"""Tests for site profiles, the synthetic generator and datasets."""

import numpy as np
import pytest

from repro.solar.datasets import (
    available_datasets,
    build_dataset,
    clear_cache,
    dataset_summary,
)
from repro.solar.sites import SITE_ORDER, SITES, get_site
from repro.solar.synthetic import generate_trace


class TestSites:
    def test_all_six_sites_present(self):
        assert set(SITE_ORDER) == set(SITES)
        assert len(SITE_ORDER) == 6

    def test_lookup_case_insensitive(self):
        assert get_site("pfci").name == "PFCI"

    def test_unknown_site(self):
        with pytest.raises(KeyError, match="unknown site"):
            get_site("XXXX")

    def test_resolutions_match_table1(self):
        assert get_site("SPMD").resolution_minutes == 5
        assert get_site("ECSU").resolution_minutes == 5
        for name in ("ORNL", "HSU", "NPCS", "PFCI"):
            assert get_site(name).resolution_minutes == 1

    def test_observations_per_year_match_table1(self):
        assert get_site("SPMD").observations_per_year == 105_120
        assert get_site("ORNL").observations_per_year == 525_600

    def test_day_type_models_are_valid_chains(self):
        for site in SITES.values():
            rows = site.day_type_model.transition.sum(axis=1)
            assert np.allclose(rows, 1.0)

    def test_sunny_sites_have_more_clear_days(self):
        sunny = get_site("PFCI").day_type_model.stationary_distribution()[0]
        cloudy = get_site("ORNL").day_type_model.stationary_distribution()[0]
        assert sunny > cloudy


class TestGenerateTrace:
    def test_shape_and_nonnegativity(self):
        trace = generate_trace(get_site("PFCI"), n_days=10)
        assert trace.n_days == 10
        assert trace.samples_per_day == 1440
        assert (trace.values >= 0).all()

    def test_deterministic_default_seed(self):
        a = generate_trace(get_site("HSU"), n_days=5)
        b = generate_trace(get_site("HSU"), n_days=5)
        assert np.array_equal(a.values, b.values)

    def test_seed_override_changes_weather(self):
        a = generate_trace(get_site("HSU"), n_days=5, seed=1)
        b = generate_trace(get_site("HSU"), n_days=5, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_night_is_dark(self):
        trace = generate_trace(get_site("PFCI"), n_days=3)
        days = trace.as_days()
        assert days[:, 0].max() == 0.0  # midnight
        assert days[:, 720] .min() > 0.0  # noon is lit

    def test_rejects_nonpositive_days(self):
        with pytest.raises(ValueError):
            generate_trace(get_site("PFCI"), n_days=0)

    def test_sunny_site_less_variable_than_cloudy(self):
        # Compare mean absolute 30-minute relative change around midday.
        def midday_variability(name):
            trace = generate_trace(get_site(name), n_days=40)
            days = trace.as_days()
            spd = trace.samples_per_day
            midday = days[:, spd // 3 : 2 * spd // 3 : 30]
            rel = np.abs(np.diff(midday, axis=1)) / (midday[:, :-1] + 1.0)
            return rel.mean()

        assert midday_variability("PFCI") < midday_variability("ORNL")


class TestDatasets:
    def test_available(self):
        assert available_datasets() == SITE_ORDER

    def test_cache_returns_same_object(self):
        clear_cache()
        a = build_dataset("PFCI", n_days=5)
        b = build_dataset("pfci", n_days=5)
        assert a is b
        c = build_dataset("PFCI", n_days=6)
        assert c is not a
        clear_cache()

    def test_summary_matches_paper_table1(self):
        summary = dataset_summary("ORNL")
        assert summary == {
            "data_set": "ORNL",
            "location": "TN",
            "observations": 525_600,
            "days": 365,
            "resolution_minutes": 1,
        }
