"""Hypothesis property tests for the scenario engine.

Every registered scenario, over randomized traces and seeds, must
satisfy the engine's contract:

* output values are non-negative and finite;
* night slots (samples that are exactly zero in the input) stay zero;
* the no-op (``clean``) scenario is the identity;
* the same seed produces byte-identical output;
* geometry (resolution, day count) is preserved;
* composition applies transforms in order (``compose([a, b])`` equals
  applying ``a`` then ``b`` with the composed chain's spawned streams).
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.solar.scenarios import (
    Scenario,
    SoilingRamp,
    StuckAtFault,
    TransformContext,
    available_scenarios,
    make_scenario,
)
from repro.solar.trace import SolarTrace

#: Samples per day used by the randomized traces (15-minute grid keeps
#: hypothesis fast while exercising multi-sample days).
SPD = 96


def trace_strategy(max_days=4):
    """Random non-negative traces of whole days, with real night zeros."""

    def build(values):
        shaped = values.reshape(-1, SPD)
        # Force a night: first and last eighth of every day is dark.
        shaped[:, : SPD // 8] = 0.0
        shaped[:, -SPD // 8 :] = 0.0
        return SolarTrace(shaped.reshape(-1), (24 * 60) // SPD, "prop")

    return st.integers(1, max_days).flatmap(
        lambda days: arrays(
            float,
            days * SPD,
            elements=st.floats(0.0, 1000.0, allow_nan=False),
        ).map(build)
    )


scenario_names = st.sampled_from(available_scenarios())
seeds = st.integers(0, 2**31 - 1)


class TestScenarioContract:
    @settings(max_examples=30, deadline=None)
    @given(trace=trace_strategy(), name=scenario_names, seed=seeds)
    def test_non_negative_and_finite(self, trace, name, seed):
        out = make_scenario(name, seed=seed).apply(trace)
        assert np.isfinite(out.values).all()
        assert (out.values >= 0).all()

    @settings(max_examples=30, deadline=None)
    @given(trace=trace_strategy(), name=scenario_names, seed=seeds)
    def test_night_slots_stay_zero(self, trace, name, seed):
        out = make_scenario(name, seed=seed).apply(trace)
        assert (out.values[trace.values == 0.0] == 0.0).all()

    @settings(max_examples=30, deadline=None)
    @given(trace=trace_strategy(), name=scenario_names, seed=seeds)
    def test_same_seed_byte_identical(self, trace, name, seed):
        first = make_scenario(name, seed=seed).apply(trace)
        second = make_scenario(name, seed=seed).apply(trace)
        assert first.values.tobytes() == second.values.tobytes()

    @settings(max_examples=30, deadline=None)
    @given(trace=trace_strategy(), name=scenario_names, seed=seeds)
    def test_geometry_preserved(self, trace, name, seed):
        out = make_scenario(name, seed=seed).apply(trace)
        assert out.n_days == trace.n_days
        assert out.resolution_minutes == trace.resolution_minutes
        assert out.n_samples == trace.n_samples

    @settings(max_examples=20, deadline=None)
    @given(trace=trace_strategy(), seed=seeds)
    def test_noop_scenario_is_identity(self, trace, seed):
        out = Scenario(name="clean", seed=seed).apply(trace)
        assert out is trace

    @settings(max_examples=20, deadline=None)
    @given(trace=trace_strategy(), seed=seeds)
    def test_composition_order_respected(self, trace, seed):
        """compose([a, b]) == b(a(x)) under the composed chain's streams."""
        a = SoilingRamp(rate_per_day=0.05, floor=0.2)
        b = StuckAtFault(rate_per_day=4.0, mean_duration_minutes=120.0)
        composed = Scenario(name="ab", transforms=(a, b), seed=seed).apply(trace)
        # Manual application with the same spawned streams.
        streams = np.random.SeedSequence(seed).spawn(2)
        values = trace.values
        for transform, stream in zip((a, b), streams):
            ctx = TransformContext(
                resolution_minutes=trace.resolution_minutes,
                samples_per_day=trace.samples_per_day,
                n_days=trace.n_days,
                rng=np.random.default_rng(stream),
            )
            values = transform(values, ctx)
        assert composed.values.tobytes() == values.tobytes()

    def test_order_matters_for_noncommuting_chain(self, repeating_day_trace):
        """Reversing a non-commuting chain changes the output.

        Soiling-then-stuck holds already-soiled (day-scaled) values;
        stuck-then-soiling scales the held values -- on a realistic
        trace with a heavy fault rate the two orders must differ.
        """
        a = SoilingRamp(rate_per_day=0.05, floor=0.2)
        b = StuckAtFault(rate_per_day=4.0, mean_duration_minutes=240.0)
        ab = Scenario(name="ab", transforms=(a, b), seed=99).apply(
            repeating_day_trace
        )
        ba = Scenario(name="ba", transforms=(b, a), seed=99).apply(
            repeating_day_trace
        )
        assert not np.array_equal(ab.values, ba.values)
