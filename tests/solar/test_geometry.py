"""Tests for solar geometry."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.solar.geometry import (
    day_length_hours,
    declination,
    elevation_profile,
    hour_angle,
    solar_elevation,
    sunrise_sunset_hours,
)


class TestDeclination:
    def test_bounds(self):
        for day in range(1, 366):
            dec = declination(day)
            assert abs(dec) <= math.radians(23.45) + 1e-12

    def test_solstices_and_equinoxes(self):
        # Summer solstice ~day 172: max declination.
        assert declination(172) == pytest.approx(math.radians(23.45), abs=0.01)
        # Winter solstice ~day 355: min declination.
        assert declination(355) == pytest.approx(-math.radians(23.45), abs=0.01)
        # Spring equinox ~day 81: near zero.
        assert abs(declination(81)) < math.radians(1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            declination(0)
        with pytest.raises(ValueError):
            declination(366)


class TestHourAngle:
    def test_solar_noon_is_zero(self):
        assert hour_angle(12.0) == pytest.approx(0.0)

    def test_morning_negative_afternoon_positive(self):
        assert hour_angle(6.0) < 0
        assert hour_angle(18.0) > 0

    def test_fifteen_degrees_per_hour(self):
        assert hour_angle(13.0) == pytest.approx(math.radians(15.0))

    def test_wraps_modulo_24(self):
        assert hour_angle(36.0) == pytest.approx(hour_angle(12.0))


class TestSolarElevation:
    def test_noon_higher_than_morning(self):
        noon = solar_elevation(40.0, 172, 12.0)
        morning = solar_elevation(40.0, 172, 8.0)
        assert noon > morning

    def test_midnight_below_horizon_midlatitude(self):
        assert solar_elevation(40.0, 172, 0.0) < 0

    def test_equator_equinox_noon_near_zenith(self):
        elev = solar_elevation(0.0, 81, 12.0)
        assert elev == pytest.approx(math.pi / 2, abs=math.radians(2.0))

    def test_higher_latitude_lower_sun(self):
        low = solar_elevation(20.0, 172, 12.0)
        high = solar_elevation(60.0, 172, 12.0)
        assert low > high


class TestElevationProfile:
    def test_shape_and_symmetry(self):
        profile = elevation_profile(35.0, 100, 288)
        assert profile.shape == (288,)
        # Peak at solar noon (sample 144).
        assert int(np.argmax(profile)) == 144

    def test_matches_scalar_function(self):
        profile = elevation_profile(35.0, 100, 24)
        for i in (0, 6, 12, 18):
            assert profile[i] == pytest.approx(
                solar_elevation(35.0, 100, i * 1.0), abs=1e-12
            )

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            elevation_profile(35.0, 100, 0)


class TestSunriseSunset:
    def test_summer_longer_than_winter(self):
        assert day_length_hours(45.0, 172) > day_length_hours(45.0, 355)

    def test_equinox_close_to_12h(self):
        assert day_length_hours(45.0, 81) == pytest.approx(12.0, abs=0.3)

    def test_polar_day_and_night(self):
        sunrise, sunset = sunrise_sunset_hours(80.0, 172)
        assert (sunrise, sunset) == (0.0, 24.0)  # midnight sun
        sunrise, sunset = sunrise_sunset_hours(80.0, 355)
        assert sunrise == sunset  # polar night

    def test_symmetric_about_noon(self):
        sunrise, sunset = sunrise_sunset_hours(35.0, 120)
        assert sunrise + sunset == pytest.approx(24.0)

    @given(
        lat=st.floats(-65.0, 65.0),
        day=st.integers(1, 365),
    )
    def test_day_length_bounds(self, lat, day):
        length = day_length_hours(lat, day)
        assert 0.0 <= length <= 24.0

    @given(
        lat=st.floats(-65.0, 65.0),
        day=st.integers(1, 365),
        hour=st.floats(0.0, 24.0, exclude_max=True),
    )
    def test_elevation_within_physical_bounds(self, lat, day, hour):
        elev = solar_elevation(lat, day, hour)
        assert -math.pi / 2 <= elev <= math.pi / 2
