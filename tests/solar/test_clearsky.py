"""Tests for the clear-sky irradiance models."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.solar.clearsky import adnot, clearsky_profile, haurwitz


class TestHaurwitz:
    def test_zero_below_horizon(self):
        assert haurwitz(np.array([-0.1, 0.0]) ).tolist() == [0.0, 0.0]

    def test_zenith_sun_near_max(self):
        value = haurwitz(np.array([math.pi / 2]))[0]
        # 1098 * exp(-0.057) ~ 1037 W/m^2
        assert value == pytest.approx(1037.2, abs=1.0)

    def test_monotone_in_elevation(self):
        elevations = np.linspace(0.01, math.pi / 2, 50)
        values = haurwitz(elevations)
        assert (np.diff(values) > 0).all()

    @given(st.floats(-math.pi / 2, math.pi / 2))
    def test_non_negative_and_bounded(self, elevation):
        value = float(haurwitz(np.array([elevation]))[0])
        assert 0.0 <= value <= 1100.0


class TestAdnot:
    def test_zero_below_horizon(self):
        assert adnot(np.array([-0.5]))[0] == 0.0

    def test_zenith_value(self):
        assert adnot(np.array([math.pi / 2]))[0] == pytest.approx(951.39, abs=0.1)

    def test_roughly_agrees_with_haurwitz_at_high_sun(self):
        elevations = np.linspace(math.radians(30), math.radians(80), 10)
        ratio = adnot(elevations) / haurwitz(elevations)
        assert ((ratio > 0.8) & (ratio < 1.1)).all()


class TestClearskyProfile:
    def test_night_is_dark(self):
        profile = clearsky_profile(40.0, 172, 288)
        assert profile[0] == 0.0  # midnight
        assert profile[144] > 800.0  # noon, summer

    def test_summer_brighter_than_winter(self):
        summer = clearsky_profile(40.0, 172, 288)
        winter = clearsky_profile(40.0, 355, 288)
        assert summer.max() > winter.max()
        assert summer.sum() > winter.sum()

    def test_model_selection(self):
        h = clearsky_profile(40.0, 100, 48, model="haurwitz")
        a = clearsky_profile(40.0, 100, 48, model="adnot")
        assert not np.allclose(h, a)
        with pytest.raises(ValueError):
            clearsky_profile(40.0, 100, 48, model="nope")

    def test_profile_symmetric_about_noon(self):
        profile = clearsky_profile(35.0, 100, 288)
        # Sample i and 288-i mirror around solar noon at 144.
        left = profile[100:144]
        right = profile[145:189][::-1]
        assert np.allclose(left, right, rtol=1e-6)
