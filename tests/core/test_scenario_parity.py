"""WCMA parity on scenario-perturbed traces.

PR 2 pinned the online predictor, the lock-step fleet kernel and the
batch sweep engine to each other on *clean* traces.  Degraded inputs
exercise different branches (zeros mid-day from dropout, flat runs from
stuck-at faults, decorrelated days from jitter and regime shifts), so
the guarantees are re-pinned here on every qualitatively distinct
scenario: online :class:`~repro.core.wcma.WCMAPredictor` ==
:class:`~repro.core.wcma.WCMABatch` predictions to 1e-9, and
:class:`~repro.core.wcma.WCMAVector` in exact lock-step with scalar
predictors across a batch of differently-degraded traces.
"""

import numpy as np
import pytest

from repro.core.optimizer import grid_search
from repro.core.wcma import WCMABatch, WCMAParams, WCMAPredictor, WCMAVector
from repro.solar.scenarios import make_scenario
from repro.solar.slots import SlotView
from repro.solar.trace import SolarTrace

TOL = 1e-9

#: One scenario per degradation mechanism (deterministic ramps, zeroed
#: windows, held values, imputation, weather shift, clock drift, and
#: the composite).
PARITY_SCENARIOS = (
    "soiling-washout",
    "shading",
    "dropout",
    "stuck",
    "gaps-hold",
    "gaps-zero",
    "regime-shift",
    "jitter",
    "harsh-field",
)

N_SLOTS = 48
PARAMS = WCMAParams(alpha=0.7, days=10, k=2)


@pytest.fixture(scope="module", params=PARITY_SCENARIOS)
def perturbed_trace(request, hsu_trace):
    return make_scenario(request.param, seed=1234).apply(hsu_trace)


class TestOnlineVsBatch:
    def test_online_matches_batch(self, perturbed_trace):
        batch = WCMABatch.from_trace(perturbed_trace, N_SLOTS)
        batch_pred = batch.predictions(PARAMS)
        online_pred = WCMAPredictor(N_SLOTS, PARAMS).run(
            batch.view.flat_starts()
        )[:-1]
        t = np.arange(batch_pred.size)
        # Same convention as the clean-trace parity suite: the final
        # boundary of each day uses one more completed day of history
        # in the batch engine, and warm-up boundaries are NaN there.
        compare = np.isfinite(batch_pred) & ((t % N_SLOTS) != N_SLOTS - 1)
        assert compare.sum() > 0
        assert np.abs(batch_pred[compare] - online_pred[compare]).max() < TOL

    def test_grid_search_runs_on_degraded_trace(self, perturbed_trace):
        """The sweep engine accepts degraded inputs end to end."""
        result = grid_search(
            perturbed_trace,
            N_SLOTS,
            alphas=(0.5, 0.7),
            days=(5, 10),
            ks=(1, 2),
        )
        assert np.isfinite(result.best_error)
        assert 0.0 <= result.best_error < 2.0


class TestVectorLockStep:
    def test_vector_matches_scalars_across_scenarios(self, hsu_trace):
        """One WCMAVector column per scenario == per-trace scalars."""
        scenarios = ("dropout", "stuck", "jitter")
        traces = [
            make_scenario(name, seed=77).apply(hsu_trace) for name in scenarios
        ]
        starts = np.column_stack(
            [SlotView.from_trace(t, N_SLOTS).flat_starts() for t in traces]
        )
        vector = WCMAVector(N_SLOTS, PARAMS, batch_size=len(traces))
        scalars = [WCMAPredictor(N_SLOTS, PARAMS) for _ in traces]
        worst = 0.0
        for t in range(starts.shape[0]):
            vec = vector.observe(starts[t])
            ref = np.array(
                [p.observe(float(v)) for p, v in zip(scalars, starts[t])]
            )
            worst = max(worst, float(np.abs(vec - ref).max()))
        assert worst < TOL

    def test_vector_reset_reproduces(self, hsu_trace):
        trace = make_scenario("harsh-field", seed=5).apply(hsu_trace)
        starts = SlotView.from_trace(trace, N_SLOTS).flat_starts()
        batch = np.column_stack([starts, starts])
        vector = WCMAVector(N_SLOTS, PARAMS, batch_size=2)
        first = np.array([vector.observe(batch[t]) for t in range(200)])
        vector.reset()
        second = np.array([vector.observe(batch[t]) for t in range(200)])
        np.testing.assert_array_equal(first, second)


class TestDegradedEdgeCases:
    def test_all_dark_scenario_day(self):
        """A trace a heavy dropout zeroes completely still runs."""
        values = np.zeros(15 * N_SLOTS)
        trace = SolarTrace(values, (24 * 60) // N_SLOTS, "dark")
        batch_pred = WCMABatch.from_trace(trace, N_SLOTS).predictions(PARAMS)
        online_pred = WCMAPredictor(N_SLOTS, PARAMS).run(values)[:-1]
        assert (online_pred == 0.0).all()
        valid = np.isfinite(batch_pred)
        assert valid.any()  # history completes after D days
        assert np.abs(batch_pred[valid] - online_pred[valid]).max() < TOL
