"""Tests for the AR and linear-trend regression predictors."""

import pytest

from repro.core.regression import ARPredictor, SlotLinearTrendPredictor
from repro.metrics.evaluate import evaluate_predictor


class TestARPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            ARPredictor(0)
        with pytest.raises(ValueError):
            ARPredictor(48, order=0)
        with pytest.raises(ValueError):
            ARPredictor(48, history_days=0)
        with pytest.raises(ValueError):
            ARPredictor(48, order=5, fit_window=6)
        with pytest.raises(ValueError):
            ARPredictor(48, refit_every=0)
        with pytest.raises(ValueError):
            ARPredictor(48).observe(-1.0)

    def test_warmup_is_persistence(self):
        predictor = ARPredictor(4, order=2)
        assert predictor.observe(10.0) == 10.0

    def test_constant_normalised_signal_predicted_exactly(self):
        """On identical repeating days, the normalised signal is 1
        everywhere, so the AR prediction re-scales mu exactly."""
        profile = [0.0, 100.0, 200.0, 100.0]
        predictor = ARPredictor(4, order=2, history_days=3, refit_every=4)
        predictions = []
        for _ in range(8):
            for value in profile:
                predictions.append(predictor.observe(value))
        # Late prediction at slot 1 (targets 200) should be near-exact.
        assert predictions[-3] == pytest.approx(200.0, rel=0.05)

    def test_reset(self):
        predictor = ARPredictor(2, order=1)
        seq = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        first = [predictor.observe(v) for v in seq]
        predictor.reset()
        second = [predictor.observe(v) for v in seq]
        assert first == second

    def test_reasonable_accuracy(self, hsu_trace):
        run = evaluate_predictor(ARPredictor(48), hsu_trace, 48)
        assert 0.0 < run.mape < 0.5

    def test_nonnegative_predictions(self, hsu_trace):
        predictor = ARPredictor(48)
        starts = hsu_trace.as_days()[:8, ::30].reshape(-1)
        for value in starts:
            assert predictor.observe(float(value)) >= 0.0


class TestSlotLinearTrend:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlotLinearTrendPredictor(0)
        with pytest.raises(ValueError):
            SlotLinearTrendPredictor(48, window=1)
        with pytest.raises(ValueError):
            SlotLinearTrendPredictor(4).observe(-1.0)

    def test_extrapolates_linear_ramp_exactly(self):
        """Day d has value 10*d in every slot: the trend predictor must
        extrapolate tomorrow's value exactly."""
        predictor = SlotLinearTrendPredictor(2, window=3)
        outputs = []
        for day in range(1, 6):
            for _ in range(2):
                outputs.append(predictor.observe(10.0 * day))
        # Day 5 (values 50), prediction extrapolates to 60... the
        # prediction targets the next slot which also follows the ramp:
        # with window=3 over days (2,3,4) at the time of day 5 slot 0 ->
        # fit predicts day 5's value 50 exactly.
        assert outputs[8] == pytest.approx(50.0, abs=1e-9)

    def test_clamps_negative_extrapolation(self):
        predictor = SlotLinearTrendPredictor(1, window=2)
        for value in (100.0, 10.0):  # steep downward trend
            predictor.observe(value)
        assert predictor.observe(1.0) >= 0.0

    def test_warmup_is_persistence(self):
        predictor = SlotLinearTrendPredictor(2, window=3)
        assert predictor.observe(42.0) == 42.0

    def test_reset(self):
        predictor = SlotLinearTrendPredictor(2, window=2)
        seq = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        first = [predictor.observe(v) for v in seq]
        predictor.reset()
        second = [predictor.observe(v) for v in seq]
        assert first == second

    def test_worse_than_wcma_on_cloudy_data(self, hsu_trace):
        """Weather-blind trend extrapolation must lose to WCMA."""
        from repro.core.wcma import WCMAParams, WCMAPredictor

        trend = evaluate_predictor(SlotLinearTrendPredictor(48), hsu_trace, 48)
        wcma = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.7, 10, 2)), hsu_trace, 48
        )
        assert wcma.mape < trend.mape
