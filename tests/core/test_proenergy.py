"""Tests for the Pro-Energy-style profile-matching predictor."""

import pytest

from repro.core.proenergy import ProEnergyPredictor
from repro.metrics.evaluate import evaluate_predictor


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProEnergyPredictor(0)
        with pytest.raises(ValueError):
            ProEnergyPredictor(48, pool_size=0)
        with pytest.raises(ValueError):
            ProEnergyPredictor(48, window=0)
        with pytest.raises(ValueError):
            ProEnergyPredictor(48, window=49)
        with pytest.raises(ValueError):
            ProEnergyPredictor(48, alpha=1.5)
        with pytest.raises(ValueError):
            ProEnergyPredictor(48, pool_size=3, top_k=4)

    def test_memory_model(self):
        predictor = ProEnergyPredictor(48, pool_size=10)
        assert predictor.memory_bytes() == 10 * 48 * 2
        with pytest.raises(ValueError):
            predictor.memory_bytes(bytes_per_sample=0)


class TestBehaviour:
    def test_warmup_is_persistence(self):
        predictor = ProEnergyPredictor(4, pool_size=2, top_k=1)
        assert predictor.observe(10.0) == 10.0
        assert predictor.stored_profiles == 0

    def test_pool_fills_and_evicts(self):
        predictor = ProEnergyPredictor(2, pool_size=2, window=2, top_k=1)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            predictor.observe(value)
        assert predictor.stored_profiles == 2  # day 1 evicted

    def test_matches_identical_days_exactly_at_alpha0(self):
        profile = [0.0, 100.0, 200.0, 100.0]
        predictor = ProEnergyPredictor(4, pool_size=3, window=2, alpha=0.0, top_k=1)
        predictions = []
        for _ in range(5):
            for value in profile:
                predictions.append(predictor.observe(value))
        # Day 4, slot 1 -> stored profile's slot 2 = 200 exactly.
        assert predictions[17] == pytest.approx(200.0)

    def test_selects_most_similar_profile(self):
        """Given a bright and a dark stored day, a bright morning must
        predict from the bright profile."""
        n = 4
        bright = [0.0, 200.0, 400.0, 200.0]
        dark = [0.0, 50.0, 100.0, 50.0]
        predictor = ProEnergyPredictor(n, pool_size=2, window=2, alpha=0.0, top_k=1)
        for day in (dark, bright):
            for value in day:
                predictor.observe(value)
        # New day tracking the bright profile.
        predictor.observe(0.0)
        prediction = predictor.observe(200.0)  # slot 1 -> predict slot 2
        assert prediction == pytest.approx(400.0)

    def test_top_k_averages(self):
        n = 4
        day_a = [0.0, 100.0, 300.0, 100.0]
        day_b = [0.0, 100.0, 100.0, 100.0]
        predictor = ProEnergyPredictor(n, pool_size=2, window=1, alpha=0.0, top_k=2)
        for day in (day_a, day_b):
            for value in day:
                predictor.observe(value)
        predictor.observe(0.0)
        prediction = predictor.observe(100.0)
        assert prediction == pytest.approx(200.0)  # mean of 300 and 100

    def test_reset(self):
        predictor = ProEnergyPredictor(2, pool_size=2, window=2)
        seq = [5.0, 10.0, 20.0, 40.0]
        first = [predictor.observe(v) for v in seq]
        predictor.reset()
        second = [predictor.observe(v) for v in seq]
        assert first == second
        assert predictor.stored_profiles == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ProEnergyPredictor(4).observe(-1.0)


class TestAccuracy:
    def test_competitive_on_real_shaped_data(self, hsu_trace):
        """Pro-Energy lands between persistence and WCMA territory."""
        run = evaluate_predictor(ProEnergyPredictor(48), hsu_trace, 48)
        assert 0.0 < run.mape < 0.35

    def test_beats_previous_day_baseline(self, hsu_trace):
        from repro.core.baselines import PreviousDayPredictor

        proenergy = evaluate_predictor(ProEnergyPredictor(48), hsu_trace, 48)
        previous = evaluate_predictor(PreviousDayPredictor(48), hsu_trace, 48)
        assert proenergy.mape < previous.mape
