"""Parity suite: sweep-engine v2 kernels vs the frozen pre-v2 loops.

Pins every kernel the fused engine rebuilt -- prefix-sum ``μ_D``,
sliding-window ``Φ_K``, the gathered conditioned-term stack and the
fused ``(D, K, alpha)`` error cube -- against the reference
implementations preserved in :mod:`repro.core.sweep_reference`, to
1e-12 on the full default grid, across all six sites at N=48 and N=24,
plus a property test that :func:`~repro.core.optimizer.sweep_many`
matches independent :func:`~repro.core.optimizer.grid_search` calls.
"""

import numpy as np
import pytest

from repro.core.optimizer import (
    DEFAULT_DAYS,
    DEFAULT_KS,
    SweepSpec,
    grid_search,
    sweep_many,
)
from repro.core.sweep_reference import ReferenceBatch
from repro.core.wcma import WCMABatch, mu_matrix
from repro.metrics.roi import roi_indices
from repro.solar.datasets import build_dataset
from repro.solar.sites import SITE_ORDER

DAYS = 45
TOL = 1e-12


def _batches(site, n_slots):
    trace = build_dataset(site, n_days=DAYS)
    batch = WCMABatch.from_trace(trace, n_slots)
    return trace, batch, ReferenceBatch(batch.view)


class TestKernelParity:
    """mu / eta / phi series: v2 vs reference, every default (D, K)."""

    @pytest.fixture(scope="class")
    def pair(self):
        _, batch, reference = _batches("HSU", 48)
        return batch, reference

    def test_mu_flat_matches_mu_matrix(self, pair):
        batch, reference = pair
        for days in DEFAULT_DAYS:
            np.testing.assert_allclose(
                batch.mu_flat(days),
                mu_matrix(batch.view.starts, days).reshape(-1),
                atol=TOL,
                rtol=0.0,
                equal_nan=True,
            )

    def test_mu2d_shape_and_warmup_nan(self, pair):
        batch, _ = pair
        mu = batch.mu2d(5)
        assert mu.shape == batch.view.starts.shape
        assert np.isnan(mu[:5]).all()
        assert np.isfinite(mu[5:]).all()

    def test_eta_flat_matches_reference(self, pair):
        batch, reference = pair
        for days in DEFAULT_DAYS:
            np.testing.assert_allclose(
                batch.eta_flat(days),
                reference.eta_flat(days),
                atol=TOL,
                rtol=0.0,
                equal_nan=True,
            )

    def test_phi_flat_matches_reference(self, pair):
        batch, reference = pair
        for days in (2, 10, 20):
            for k in DEFAULT_KS:
                np.testing.assert_allclose(
                    batch.phi_flat(days, k),
                    reference.phi_flat(days, k),
                    atol=TOL,
                    rtol=0.0,
                    equal_nan=True,
                    err_msg=f"phi(D={days}, K={k})",
                )

    def test_phi_flat_smaller_k_after_larger(self, pair):
        """The incremental window state must serve K requests in any
        order (a smaller K after a larger one is a pure cache hit)."""
        batch, reference = pair
        fresh = WCMABatch(batch.view)
        fresh.phi_flat(7, 6)  # advance the running sums to K=6 first
        for k in (3, 1, 5, 2):
            np.testing.assert_allclose(
                fresh.phi_flat(7, k),
                reference.phi_flat(7, k),
                atol=TOL,
                rtol=0.0,
                equal_nan=True,
                err_msg=f"K={k} after K=6",
            )

    def test_conditioned_term_matches_reference(self, pair):
        batch, reference = pair
        for days in (2, 11, 20):
            for k in DEFAULT_KS:
                np.testing.assert_allclose(
                    batch.conditioned_term(days, k),
                    reference.conditioned_term(days, k),
                    atol=TOL,
                    rtol=0.0,
                    equal_nan=True,
                )


class TestConditionedStack:
    @pytest.fixture(scope="class")
    def pair(self):
        _, batch, reference = _batches("PFCI", 48)
        idx = roi_indices(batch.reference_mean, 48)
        return batch, reference, idx

    def test_matches_gathered_conditioned_term(self, pair):
        batch, reference, idx = pair
        stack = batch.conditioned_stack(DEFAULT_DAYS, DEFAULT_KS, idx)
        assert stack.shape == (len(DEFAULT_DAYS), len(DEFAULT_KS), idx.size)
        for i, days in enumerate(DEFAULT_DAYS):
            for j, k in enumerate(DEFAULT_KS):
                np.testing.assert_allclose(
                    stack[i, j],
                    reference.conditioned_term(days, k)[idx],
                    atol=TOL,
                    rtol=0.0,
                    equal_nan=True,
                    err_msg=f"(D={days}, K={k})",
                )

    def test_out_buffer_and_k_subset(self, pair):
        batch, reference, idx = pair
        ks = (5, 2)
        out = np.empty((2, 2, idx.size))
        result = batch.conditioned_stack((4, 9), ks, idx, out=out)
        assert result is out
        np.testing.assert_allclose(
            out[1, 0],
            reference.conditioned_term(9, 5)[idx],
            atol=TOL,
            rtol=0.0,
            equal_nan=True,
        )

    def test_duplicate_ks(self, pair):
        batch, _, idx = pair
        stack = batch.conditioned_stack((4,), (2, 2), idx)
        np.testing.assert_array_equal(stack[:, 0], stack[:, 1])

    def test_rejects_out_of_range_idx(self, pair):
        batch, _, _ = pair
        bad = np.array([batch.n_boundaries - 1])
        with pytest.raises(ValueError, match="boundary indices"):
            batch.conditioned_stack((4,), (2,), bad)

    def test_short_lookback_is_nan(self, pair):
        """With no warm-up cut, the first K-1 boundaries lack a full
        eta window and must come back NaN, like the flat phi series."""
        batch, _, _ = pair
        idx = np.arange(0, 10)
        stack = batch.conditioned_stack((3,), (4,), idx)
        assert np.isnan(stack[0, 0, :3]).all()


class TestErrorCubeParity:
    """Full-default-grid fused cube == loop cube on every site."""

    @pytest.mark.parametrize("site", SITE_ORDER)
    @pytest.mark.parametrize("n_slots", (48, 24))
    def test_full_grid_both_objectives(self, site, n_slots):
        trace = build_dataset(site, n_days=DAYS)
        batch = WCMABatch.from_trace(trace, n_slots)
        for objective in ("mape", "mape_prime"):
            fused = grid_search(trace, n_slots, objective=objective, batch=batch)
            loop = grid_search(
                trace, n_slots, objective=objective, batch=batch, engine="loop"
            )
            np.testing.assert_allclose(
                fused.errors,
                loop.errors,
                atol=TOL,
                rtol=0.0,
                equal_nan=True,
                err_msg=f"{site} N={n_slots} {objective}",
            )
            assert fused.best == loop.best
            assert fused.best_error == pytest.approx(loop.best_error, abs=TOL)

    def test_non_uniform_alpha_grid(self):
        """The kernel's non-uniform-step branch (per-alpha drift scale)."""
        trace = build_dataset("HSU", n_days=DAYS)
        alphas = (0.0, 0.05, 0.3, 0.31, 0.9, 1.0)
        fused = grid_search(trace, 24, alphas=alphas, days=(3, 8), ks=(1, 3))
        loop = grid_search(
            trace, 24, alphas=alphas, days=(3, 8), ks=(1, 3), engine="loop"
        )
        np.testing.assert_allclose(
            fused.errors, loop.errors, atol=TOL, rtol=0.0, equal_nan=True
        )

    def test_unsorted_alpha_grid_keeps_order(self):
        trace = build_dataset("HSU", n_days=DAYS)
        alphas = (0.9, 0.1, 0.5)
        fused = grid_search(trace, 24, alphas=alphas, days=(4,), ks=(2,))
        loop = grid_search(
            trace, 24, alphas=alphas, days=(4,), ks=(2,), engine="loop"
        )
        assert fused.alphas == alphas
        np.testing.assert_allclose(
            fused.errors, loop.errors, atol=TOL, rtol=0.0, equal_nan=True
        )

    def test_short_warmup_nan_pattern_matches(self):
        """A warm-up shorter than the deepest D scores boundaries with
        incomplete history; the engines must agree on exactly which
        cube entries drown in NaN (here: every D=3 row, since day-2
        samples are scored but mu_3 is undefined there, while D=2/K=1
        stays finite)."""
        trace = build_dataset("PFCI", n_days=DAYS)
        fused = grid_search(trace, 24, days=(2, 3), ks=(1, 2), warmup_days=2)
        loop = grid_search(
            trace, 24, days=(2, 3), ks=(1, 2), warmup_days=2, engine="loop"
        )
        assert np.isnan(fused.errors).any()
        assert np.isfinite(fused.errors).any()
        np.testing.assert_array_equal(
            np.isnan(fused.errors), np.isnan(loop.errors)
        )
        np.testing.assert_allclose(
            fused.errors, loop.errors, atol=TOL, rtol=0.0, equal_nan=True
        )

    def test_d_chunk_invariance(self):
        """Chunking the D axis must not change a single bit pattern of
        the cube (same kernels, same order within each row)."""
        trace = build_dataset("HSU", n_days=DAYS)
        batch = WCMABatch.from_trace(trace, 48)
        whole = grid_search(trace, 48, batch=batch, d_chunk=len(DEFAULT_DAYS))
        for chunk in (1, 3, 7):
            chunked = grid_search(trace, 48, batch=batch, d_chunk=chunk)
            np.testing.assert_array_equal(whole.errors, chunked.errors)


class TestSweepMany:
    def test_matches_independent_grid_search(self):
        """Property: sweep_many == [grid_search(spec) for spec] for a
        mixed bag of sites, sampling rates and objectives."""
        hsu = build_dataset("HSU", n_days=DAYS)
        pfci = build_dataset("PFCI", n_days=DAYS)
        specs = [
            SweepSpec(hsu, 48),
            SweepSpec(hsu, 48, objective="mape_prime"),
            SweepSpec(hsu, 24),
            SweepSpec(pfci, 48),
        ]
        combined = sweep_many(specs)
        for spec, got in zip(specs, combined):
            solo = grid_search(spec.trace, spec.n_slots, objective=spec.objective)
            np.testing.assert_allclose(
                got.errors, solo.errors, atol=TOL, rtol=0.0, equal_nan=True
            )
            assert got.best == solo.best
            assert got.objective == spec.objective
            assert got.n_slots == spec.n_slots

    def test_accepts_bare_tuples(self):
        hsu = build_dataset("HSU", n_days=DAYS)
        a, b = sweep_many([(hsu, 24), (hsu, 24, "mape_prime")])
        assert a.objective == "mape"
        assert b.objective == "mape_prime"

    def test_reuses_injected_batch(self):
        hsu = build_dataset("HSU", n_days=DAYS)
        batch = WCMABatch.from_trace(hsu, 24)
        with_batch, without = sweep_many(
            [SweepSpec(hsu, 24, batch=batch), SweepSpec(hsu, 24, "mape_prime")]
        )
        solo = grid_search(hsu, 24, objective="mape_prime")
        np.testing.assert_allclose(
            without.errors, solo.errors, atol=TOL, rtol=0.0, equal_nan=True
        )
        assert with_batch.best == grid_search(hsu, 24, batch=batch).best
