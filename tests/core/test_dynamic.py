"""Tests for clairvoyant dynamic parameter selection (Table V logic)."""

import pytest

from repro.core.dynamic import clairvoyant_dynamic
from repro.core.optimizer import grid_search

ALPHAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
KS = (1, 2, 4, 6)
DAYS = 6


class TestClairvoyantDynamic:
    @pytest.fixture(scope="class")
    def static(self, hsu_trace):
        return grid_search(
            hsu_trace, 48, alphas=ALPHAS, days=(DAYS,), ks=KS
        )

    @pytest.fixture(scope="class")
    def modes(self, hsu_trace):
        return {
            mode: clairvoyant_dynamic(
                hsu_trace, 48, DAYS, mode=mode, alphas=ALPHAS, ks=KS
            )
            for mode in ("both", "k_only", "alpha_only")
        }

    def test_dynamic_never_worse_than_static(self, static, modes):
        for result in modes.values():
            assert result.mape <= static.best_error + 1e-12

    def test_both_is_best(self, modes):
        assert modes["both"].mape <= modes["k_only"].mape + 1e-12
        assert modes["both"].mape <= modes["alpha_only"].mape + 1e-12

    def test_alpha_adaptation_beats_k_adaptation(self, modes):
        """Table V ordering: adapting alpha helps more than adapting K."""
        assert modes["alpha_only"].mape <= modes["k_only"].mape + 1e-12

    def test_reported_fixed_parameters(self, modes):
        assert modes["both"].fixed_alpha is None
        assert modes["both"].fixed_k is None
        assert modes["k_only"].fixed_alpha in ALPHAS
        assert modes["alpha_only"].fixed_k in KS

    def test_paper_observation_on_companion_parameters(self, static, modes):
        """With K dynamic, a lower fixed alpha wins; with alpha dynamic,
        a higher fixed K wins (Section IV-C's closing observation)."""
        assert modes["k_only"].fixed_alpha <= static.best.alpha
        assert modes["alpha_only"].fixed_k >= static.best.k

    def test_mode_validation(self, hsu_trace):
        with pytest.raises(ValueError, match="mode"):
            clairvoyant_dynamic(hsu_trace, 48, DAYS, mode="everything")

    def test_metadata(self, modes):
        result = modes["both"]
        assert result.n_slots == 48
        assert result.days == DAYS

    def test_gains_grow_as_n_shrinks(self, hsu_trace):
        """Relative improvement of dynamic-both over static grows as the
        horizon lengthens (fewer slots per day)."""
        gains = {}
        for n_slots in (48, 24):
            static = grid_search(
                hsu_trace, n_slots, alphas=ALPHAS, days=(DAYS,), ks=KS
            )
            both = clairvoyant_dynamic(
                hsu_trace, n_slots, DAYS, mode="both", alphas=ALPHAS, ks=KS
            )
            gains[n_slots] = (static.best_error - both.mape) / static.best_error
        # Both horizons gain substantially; on a 30-day trace the N-trend
        # itself is noisy, so only bound the deviation (the full-year
        # trend is asserted in benchmarks/test_bench_table5.py).
        assert gains[48] > 0.3 and gains[24] > 0.3
        assert gains[24] >= gains[48] - 0.1
