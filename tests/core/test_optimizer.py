"""Tests for the exhaustive parameter grid search."""

import numpy as np
import pytest

from repro.core.optimizer import (
    DEFAULT_ALPHAS,
    DEFAULT_DAYS,
    DEFAULT_KS,
    grid_search,
    mape_for_params,
)
from repro.core.wcma import WCMABatch, WCMAParams


SMALL_ALPHAS = (0.0, 0.3, 0.6, 0.9)
SMALL_DAYS = (2, 4, 6)
SMALL_KS = (1, 2, 3)


class TestDefaults:
    def test_paper_grids(self):
        assert DEFAULT_ALPHAS == tuple(round(0.1 * i, 1) for i in range(11))
        assert DEFAULT_DAYS == tuple(range(2, 21))
        assert DEFAULT_KS == tuple(range(1, 7))


class TestGridSearch:
    @pytest.fixture(scope="class")
    def result(self, pfci_trace):
        return grid_search(
            pfci_trace, 48, alphas=SMALL_ALPHAS, days=SMALL_DAYS, ks=SMALL_KS
        )

    def test_cube_shape(self, result):
        assert result.errors.shape == (3, 3, 4)
        assert np.isfinite(result.errors).all()

    def test_best_is_cube_min(self, result):
        assert result.best_error == pytest.approx(np.nanmin(result.errors))
        i = result.days.index(result.best.days)
        j = result.ks.index(result.best.k)
        a = result.alphas.index(result.best.alpha)
        assert result.errors[i, j, a] == result.best_error

    def test_error_at(self, result):
        value = result.error_at(0.3, 4, 2)
        assert value == result.errors[1, 1, 1]
        with pytest.raises(KeyError):
            result.error_at(0.5, 4, 2)

    def test_best_for_k(self, result):
        params, err = result.best_for_k(2)
        assert params.k == 2
        assert err >= result.best_error - 1e-12
        assert err == pytest.approx(np.nanmin(result.errors[:, 1, :]))

    def test_best_for_days(self, result):
        params, err = result.best_for_days(4)
        assert params.days == 4
        assert err == pytest.approx(np.nanmin(result.errors[1, :, :]))

    def test_objective_mape_prime(self, pfci_trace):
        prime = grid_search(
            pfci_trace,
            48,
            alphas=SMALL_ALPHAS,
            days=SMALL_DAYS,
            ks=SMALL_KS,
            objective="mape_prime",
        )
        assert prime.objective == "mape_prime"

    def test_mape_lower_than_mape_prime_at_optimum(self, pfci_trace):
        """Table II's headline: scoring against the slot mean yields
        lower optimal error than scoring against the boundary sample."""
        by_mape = grid_search(
            pfci_trace, 48, alphas=SMALL_ALPHAS, days=SMALL_DAYS, ks=SMALL_KS
        )
        by_prime = grid_search(
            pfci_trace,
            48,
            alphas=SMALL_ALPHAS,
            days=SMALL_DAYS,
            ks=SMALL_KS,
            objective="mape_prime",
        )
        assert by_mape.best_error < by_prime.best_error

    def test_batch_reuse_consistent(self, pfci_trace):
        batch = WCMABatch.from_trace(pfci_trace, 48)
        a = grid_search(pfci_trace, 48, alphas=(0.5,), days=(4,), ks=(2,))
        b = grid_search(
            pfci_trace, 48, alphas=(0.5,), days=(4,), ks=(2,), batch=batch
        )
        assert a.best_error == pytest.approx(b.best_error)

    def test_matches_online_evaluation(self, pfci_trace):
        """The vectorized sweep must agree with the slow online path."""
        from repro.core.wcma import WCMAPredictor
        from repro.metrics.evaluate import evaluate_predictor

        params = WCMAParams(0.6, 4, 2)
        fast = mape_for_params(pfci_trace, 48, params)
        slow = evaluate_predictor(
            WCMAPredictor(48, params), pfci_trace, 48
        ).mape
        assert fast == pytest.approx(slow, rel=1e-9)

    def test_validation(self, pfci_trace):
        with pytest.raises(ValueError, match="objective"):
            grid_search(pfci_trace, 48, objective="rmse")
        with pytest.raises(ValueError, match="non-empty"):
            grid_search(pfci_trace, 48, alphas=())
        with pytest.raises(ValueError, match="history depth"):
            grid_search(pfci_trace, 48, days=(60,))
        with pytest.raises(ValueError, match="engine"):
            grid_search(pfci_trace, 48, engine="vectorised")
        with pytest.raises(ValueError, match="d_chunk"):
            grid_search(pfci_trace, 48, d_chunk=0)

    def test_d_equal_trace_length_rejected(self, pfci_trace):
        """The guard is D >= n_days, not just D > n_days: with D equal
        to the trace length no complete history row ever exists."""
        with pytest.raises(ValueError, match="history depth"):
            grid_search(pfci_trace, 48, days=(pfci_trace.n_days,))

    def test_thin_history_warns_and_flags_meta(self, pfci_trace):
        """2*max(D) > n_days is legal but scores deep-D grid points on
        very little data; the sweep must say so."""
        deep = pfci_trace.n_days // 2 + 1
        with pytest.warns(RuntimeWarning, match="thin history"):
            result = grid_search(
                pfci_trace,
                48,
                alphas=(0.5,),
                days=(deep,),
                ks=(2,),
                warmup_days=deep,  # score only where the history is full
            )
        assert result.meta["thin_history"] is True

    def test_comfortable_history_no_warning(self, result):
        assert result.meta["thin_history"] is False
        assert result.meta["engine"] == "fused"

    def test_loop_engine_same_result(self, pfci_trace, result):
        loop = grid_search(
            pfci_trace,
            48,
            alphas=SMALL_ALPHAS,
            days=SMALL_DAYS,
            ks=SMALL_KS,
            engine="loop",
        )
        assert loop.meta["engine"] == "loop"
        assert loop.best == result.best
        np.testing.assert_allclose(loop.errors, result.errors, atol=1e-12, rtol=0.0)
