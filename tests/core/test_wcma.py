"""Tests for the WCMA predictor: parameters, online form, batch engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.wcma import (
    ETA_FLOOR_FRACTION,
    WCMABatch,
    WCMAParams,
    WCMAPredictor,
    mu_matrix,
)
from repro.solar.slots import SlotView


class TestWCMAParams:
    def test_valid(self):
        p = WCMAParams(alpha=0.5, days=10, k=3)
        assert (p.alpha, p.days, p.k) == (0.5, 10, 3)

    @pytest.mark.parametrize(
        "alpha,days,k",
        [(-0.1, 10, 3), (1.1, 10, 3), (0.5, 0, 3), (0.5, 10, 0)],
    )
    def test_invalid(self, alpha, days, k):
        with pytest.raises(ValueError):
            WCMAParams(alpha=alpha, days=days, k=k)

    def test_theta_weights(self):
        theta = WCMAParams.theta(4)
        assert theta.tolist() == [0.25, 0.5, 0.75, 1.0]
        # Eq. 5: weights rise from 1/K to 1.
        assert theta[0] == pytest.approx(1 / 4)


class TestMuMatrix:
    def test_window_mean(self):
        starts = np.arange(12, dtype=float).reshape(4, 3)
        mu = mu_matrix(starts, days=2)
        assert np.isnan(mu[:2]).all()
        # Row 2 = mean of rows 0 and 1.
        assert mu[2].tolist() == [1.5, 2.5, 3.5]
        assert mu[3].tolist() == [4.5, 5.5, 6.5]

    def test_insufficient_days_all_nan(self):
        mu = mu_matrix(np.ones((3, 2)), days=5)
        assert np.isnan(mu).all()

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            mu_matrix(np.ones(5), days=2)
        with pytest.raises(ValueError):
            mu_matrix(np.ones((3, 2)), days=0)

    @settings(max_examples=25, deadline=None)
    @given(
        n_days=st.integers(3, 15),
        n_slots=st.integers(1, 6),
        days=st.integers(1, 6),
        seed=st.integers(0, 999),
    )
    def test_matches_naive_computation(self, n_days, n_slots, days, seed):
        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, 100, (n_days, n_slots))
        mu = mu_matrix(starts, days)
        for d in range(n_days):
            if d < days:
                assert np.isnan(mu[d]).all()
            else:
                assert mu[d] == pytest.approx(starts[d - days : d].mean(axis=0))


class TestOnlinePredictor:
    def test_warmup_is_persistence(self):
        predictor = WCMAPredictor(4, WCMAParams(0.5, 2, 2))
        assert predictor.observe(10.0) == 10.0
        assert predictor.observe(20.0) == 20.0

    def test_identical_days_alpha_zero_predicts_next_slot(self):
        """With D identical days, mu = profile and Phi = 1, so the
        alpha=0 prediction equals the next slot's (historical) value."""
        profile = [0.0, 100.0, 200.0, 100.0]
        predictor = WCMAPredictor(4, WCMAParams(0.0, 2, 1))
        predictions = []
        for _ in range(4):
            for value in profile:
                predictions.append(predictor.observe(value))
        # Day 3 (index 3): prediction at slot 1 targets slot 2 -> 200.
        day3 = predictions[12:]
        assert day3[1] == pytest.approx(200.0)
        assert day3[2] == pytest.approx(100.0)

    def test_alpha_blend(self):
        """alpha blends persistence and the conditioned average."""
        profile = [0.0, 100.0, 200.0, 100.0]
        outputs = {}
        for alpha in (0.0, 0.5, 1.0):
            predictor = WCMAPredictor(4, WCMAParams(alpha, 2, 1))
            seq = []
            for _ in range(4):
                for value in profile:
                    seq.append(predictor.observe(value))
            outputs[alpha] = seq[13]  # day 3, slot 1 -> targets 200
        assert outputs[1.0] == pytest.approx(100.0)
        assert outputs[0.0] == pytest.approx(200.0)
        assert outputs[0.5] == pytest.approx(150.0)

    def test_rejects_negative_power(self):
        predictor = WCMAPredictor(4, WCMAParams(0.5, 2, 1))
        with pytest.raises(ValueError):
            predictor.observe(-1.0)

    def test_reset_restores_cold_start(self):
        predictor = WCMAPredictor(2, WCMAParams(0.3, 2, 1))
        first = [predictor.observe(v) for v in (1.0, 2.0, 3.0, 4.0, 5.0)]
        predictor.reset()
        second = [predictor.observe(v) for v in (1.0, 2.0, 3.0, 4.0, 5.0)]
        assert first == second

    def test_rejects_bad_eta_floor(self):
        with pytest.raises(ValueError):
            WCMAPredictor(4, WCMAParams(0.5, 2, 1), eta_floor_fraction=1.0)

    def test_conditioning_factor_tracks_brightness(self):
        """A day twice as bright as history doubles the conditioned term."""
        n = 4
        base = [0.0, 100.0, 200.0, 100.0]
        predictor = WCMAPredictor(n, WCMAParams(0.0, 3, 1))
        for _ in range(3):
            for value in base:
                predictor.observe(value)
        # Bright day: everything x2.
        predictor.observe(0.0)
        prediction = predictor.observe(200.0)  # slot 1, eta = 2
        # mu(slot 2) = 200, phi = 2 -> prediction 400.
        assert prediction == pytest.approx(400.0)


class TestBatchEngine:
    def test_matches_online_exactly(self, hsu_trace):
        params = WCMAParams(0.6, 7, 3)
        batch = WCMABatch.from_trace(hsu_trace, 48)
        batch_pred = batch.predictions(params)
        online = WCMAPredictor(48, params)
        online_pred = online.run(batch.view.flat_starts())[:-1]
        valid = np.isfinite(batch_pred)
        # The final boundary of each day is excluded: the batch engine
        # uses the next day's mu there (one more completed day than the
        # online predictor has at that moment); both values feed only
        # night slots.
        t = np.arange(batch_pred.size)
        compare = valid & ((t % 48) != 47)
        assert np.abs(batch_pred[compare] - online_pred[compare]).max() < 1e-9

    def test_five_minute_site_matches_online(self, spmd_trace):
        params = WCMAParams(0.7, 5, 2)
        batch = WCMABatch.from_trace(spmd_trace, 96)
        batch_pred = batch.predictions(params)
        online_pred = WCMAPredictor(96, params).run(batch.view.flat_starts())[:-1]
        t = np.arange(batch_pred.size)
        compare = np.isfinite(batch_pred) & ((t % 96) != 95)
        assert np.abs(batch_pred[compare] - online_pred[compare]).max() < 1e-9

    def test_nan_during_warmup(self, hsu_trace):
        batch = WCMABatch.from_trace(hsu_trace, 24)
        pred = batch.predictions(WCMAParams(0.5, 10, 2))
        assert np.isnan(pred[: 10 * 24 - 1]).all()
        assert np.isfinite(pred[11 * 24 :]).all()

    def test_caches_reused(self, hsu_trace):
        batch = WCMABatch.from_trace(hsu_trace, 24)
        q1 = batch.conditioned_term(5, 2)
        q2 = batch.conditioned_term(5, 2)
        assert q1 is q2

    def test_alpha_one_is_persistence(self, hsu_trace):
        batch = WCMABatch.from_trace(hsu_trace, 48)
        pred = batch.predictions(WCMAParams(1.0, 5, 2))
        s = batch.starts_flat[:-1]
        valid = np.isfinite(pred)
        assert np.abs(pred[valid] - s[valid]).max() < 1e-12

    def test_references_aligned(self, hsu_trace):
        batch = WCMABatch.from_trace(hsu_trace, 48)
        assert batch.reference_mean.shape == batch.reference_next_start.shape
        assert batch.reference_mean.size == batch.n_boundaries - 1
        assert np.array_equal(batch.reference_next_start, batch.starts_flat[1:])

    def test_prediction_linear_in_alpha(self, hsu_trace):
        """p(alpha) must be the convex combination of p(0) and p(1)."""
        batch = WCMABatch.from_trace(hsu_trace, 48)
        p0 = batch.predictions(WCMAParams(0.0, 5, 2))
        p1 = batch.predictions(WCMAParams(1.0, 5, 2))
        p_mid = batch.predictions(WCMAParams(0.3, 5, 2))
        valid = np.isfinite(p0)
        expect = 0.3 * p1[valid] + 0.7 * p0[valid]
        assert np.allclose(p_mid[valid], expect, atol=1e-9)

    def test_eta_floor_guard_bounds_phi_at_dawn(self, clearsky_trace):
        """Without the dawn guard, Phi explodes on clear mornings; with
        it, Phi stays within a sane band inside the ROI."""
        batch = WCMABatch.from_trace(clearsky_trace, 48)
        phi = batch.phi_flat(10, 2)
        means = batch.means_flat
        bright = means >= 0.10 * means.max()
        valid = np.isfinite(phi) & bright
        assert phi[valid].max() < 2.0
        assert phi[valid].min() > 0.5

    def test_rejects_bad_eta_floor(self, hsu_trace):
        view = SlotView.from_trace(hsu_trace, 48)
        with pytest.raises(ValueError):
            WCMABatch(view, eta_floor_fraction=-0.1)


class TestEtaFloorDefault:
    def test_constant_exported(self):
        assert 0.0 < ETA_FLOOR_FRACTION < 0.2
