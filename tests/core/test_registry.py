"""Tests for the predictor registry."""

import pytest

from repro.core.base import VectorPredictor
from repro.core.baselines import PersistencePredictor, PersistenceVector
from repro.core.registry import (
    available_predictors,
    make_predictor,
    make_vector_predictor,
    register,
    supports_vector,
    unregister,
    vector_predictors,
)
from repro.core.wcma import WCMAPredictor, WCMAVector


class TestRegistry:
    def test_defaults_registered(self):
        names = available_predictors()
        for expected in ("wcma", "ewma", "persistence", "previous-day", "moving-average"):
            assert expected in names

    def test_make_wcma_with_kwargs(self):
        predictor = make_predictor("wcma", 48, alpha=0.5, days=7, k=3)
        assert isinstance(predictor, WCMAPredictor)
        assert predictor.params.alpha == 0.5
        assert predictor.params.days == 7
        assert predictor.params.k == 3

    def test_case_insensitive(self):
        assert isinstance(make_predictor("WCMA", 24), WCMAPredictor)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown predictor"):
            make_predictor("nope", 48)

    def test_register_new_and_reject_duplicates(self):
        register("test-custom", lambda n_slots: PersistencePredictor(n_slots))
        try:
            assert isinstance(make_predictor("test-custom", 8), PersistencePredictor)
            with pytest.raises(ValueError, match="already registered"):
                register("test-custom", lambda n_slots: PersistencePredictor(n_slots))
        finally:
            unregister("test-custom")

    def test_register_overwrite_replaces(self):
        register("test-overwrite", lambda n_slots: PersistencePredictor(n_slots))
        try:
            register(
                "test-overwrite",
                lambda n_slots: PersistencePredictor(n_slots + 1),
                overwrite=True,
            )
            assert make_predictor("test-overwrite", 8).n_slots == 9
        finally:
            unregister("test-overwrite")

    def test_overwrite_without_vector_factory_drops_vector_support(self):
        register(
            "test-vec",
            lambda n_slots: PersistencePredictor(n_slots),
            vector_factory=lambda n_slots, batch_size: PersistenceVector(
                n_slots, batch_size
            ),
        )
        try:
            assert supports_vector("test-vec")
            register(
                "test-vec",
                lambda n_slots: PersistencePredictor(n_slots),
                overwrite=True,
            )
            assert not supports_vector("test-vec")
        finally:
            unregister("test-vec")

    def test_unregister_removes(self):
        register("test-gone", lambda n_slots: PersistencePredictor(n_slots))
        unregister("test-gone")
        assert "test-gone" not in available_predictors()
        with pytest.raises(KeyError):
            make_predictor("test-gone", 8)

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError, match="not registered"):
            unregister("never-registered")


class TestVectorRegistry:
    def test_defaults_have_vector_kernels(self):
        names = vector_predictors()
        for expected in (
            "wcma",
            "ewma",
            "persistence",
            "previous-day",
            "moving-average",
        ):
            assert expected in names

    def test_scalar_only_predictors_report_no_vector(self):
        assert not supports_vector("pro-energy")
        assert not supports_vector("ar")
        assert not supports_vector("linear-trend")

    def test_make_vector_predictor(self):
        kernel = make_vector_predictor("wcma", 48, 16, alpha=0.5, days=7, k=3)
        assert isinstance(kernel, WCMAVector)
        assert isinstance(kernel, VectorPredictor)
        assert kernel.batch_size == 16
        assert kernel.params.alpha == 0.5

    def test_make_vector_predictor_without_kernel_raises(self):
        with pytest.raises(KeyError, match="no vector kernel"):
            make_vector_predictor("pro-energy", 48, 4)

    def test_make_vector_predictor_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown predictor"):
            make_vector_predictor("nope", 48, 4)
