"""Tests for the predictor registry."""

import pytest

from repro.core.baselines import PersistencePredictor
from repro.core.registry import available_predictors, make_predictor, register
from repro.core.wcma import WCMAPredictor


class TestRegistry:
    def test_defaults_registered(self):
        names = available_predictors()
        for expected in ("wcma", "ewma", "persistence", "previous-day", "moving-average"):
            assert expected in names

    def test_make_wcma_with_kwargs(self):
        predictor = make_predictor("wcma", 48, alpha=0.5, days=7, k=3)
        assert isinstance(predictor, WCMAPredictor)
        assert predictor.params.alpha == 0.5
        assert predictor.params.days == 7
        assert predictor.params.k == 3

    def test_case_insensitive(self):
        assert isinstance(make_predictor("WCMA", 24), WCMAPredictor)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown predictor"):
            make_predictor("nope", 48)

    def test_register_new_and_reject_duplicates(self):
        register("test-custom", lambda n_slots: PersistencePredictor(n_slots))
        try:
            assert isinstance(make_predictor("test-custom", 8), PersistencePredictor)
            with pytest.raises(ValueError, match="already registered"):
                register("test-custom", lambda n_slots: PersistencePredictor(n_slots))
        finally:
            from repro.core import registry

            registry._FACTORIES.pop("test-custom", None)
