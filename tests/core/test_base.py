"""Tests for the predictor protocol and DayHistory ring buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base import DayHistory
from repro.core.baselines import PersistencePredictor


class TestDayHistory:
    def test_initially_empty(self):
        history = DayHistory(n_slots=4, depth=3)
        assert history.n_complete_days == 0
        assert history.total_days_completed == 0
        assert history.current_slot == 0
        assert np.isnan(history.slot_mean(0))

    def test_day_completion(self):
        history = DayHistory(n_slots=3, depth=2)
        for value in (1.0, 2.0, 3.0):
            history.push_slot(value)
        assert history.n_complete_days == 1
        assert history.current_slot == 0
        assert history.slot_mean(1) == 2.0

    def test_ring_eviction(self):
        history = DayHistory(n_slots=2, depth=2)
        for day_value in (10.0, 20.0, 30.0):  # three days of constant value
            history.push_slot(day_value)
            history.push_slot(day_value)
        # Only the last two days (20, 30) are retained.
        assert history.n_complete_days == 2
        assert history.total_days_completed == 3
        assert history.slot_mean(0) == 25.0

    def test_slot_mean_with_partial_depth(self):
        history = DayHistory(n_slots=1, depth=5)
        history.push_slot(10.0)
        history.push_slot(20.0)
        assert history.slot_mean(0) == 15.0
        assert history.slot_mean(0, depth=1) == 20.0

    def test_slot_column_order_oldest_first(self):
        history = DayHistory(n_slots=1, depth=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            history.push_slot(v)
        assert history.slot_column(0).tolist() == [2.0, 3.0, 4.0]

    def test_slot_wraps_modulo_n(self):
        history = DayHistory(n_slots=4, depth=1)
        for v in (1.0, 2.0, 3.0, 4.0):
            history.push_slot(v)
        assert history.slot_mean(5) == history.slot_mean(1)

    def test_reset(self):
        history = DayHistory(n_slots=2, depth=2)
        history.push_slot(1.0)
        history.push_slot(2.0)
        history.reset()
        assert history.n_complete_days == 0
        assert history.current_slot == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            DayHistory(n_slots=0, depth=1)
        with pytest.raises(ValueError):
            DayHistory(n_slots=1, depth=0)

    @settings(max_examples=30, deadline=None)
    @given(
        depth=st.integers(1, 5),
        n_slots=st.integers(1, 6),
        n_values=st.integers(1, 80),
        seed=st.integers(0, 1000),
    )
    def test_ring_matches_reference_model(self, depth, n_slots, n_values, seed):
        """Property: slot_mean always equals a plain-list reference."""
        rng = np.random.default_rng(seed)
        values = rng.uniform(0, 100, n_values)
        history = DayHistory(n_slots=n_slots, depth=depth)
        completed = []
        current = []
        for value in values:
            history.push_slot(float(value))
            current.append(float(value))
            if len(current) == n_slots:
                completed.append(current)
                current = []
        recent = completed[-depth:]
        if not recent:
            assert np.isnan(history.slot_mean(0))
        else:
            for slot in range(n_slots):
                expect = np.mean([day[slot] for day in recent])
                assert history.slot_mean(slot) == pytest.approx(expect)


class TestOnlinePredictorRun:
    def test_run_feeds_in_order(self):
        predictor = PersistencePredictor(4)
        samples = np.array([1.0, 2.0, 3.0])
        assert predictor.run(samples).tolist() == [1.0, 2.0, 3.0]

    def test_run_rejects_2d(self):
        with pytest.raises(ValueError):
            PersistencePredictor(4).run(np.zeros((2, 2)))
