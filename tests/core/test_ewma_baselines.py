"""Tests for the EWMA predictor and the simple baselines."""

import pytest

from repro.core.baselines import (
    MovingAveragePredictor,
    PersistencePredictor,
    PreviousDayPredictor,
)
from repro.core.ewma import EWMAPredictor
from repro.metrics.evaluate import evaluate_predictor


class TestEWMA:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(0)
        with pytest.raises(ValueError):
            EWMAPredictor(4, gamma=1.5)

    def test_first_day_persistence(self):
        predictor = EWMAPredictor(3, gamma=0.5)
        assert predictor.observe(10.0) == 10.0

    def test_repeating_days_converge_to_profile(self):
        profile = [10.0, 50.0, 30.0]
        predictor = EWMAPredictor(3, gamma=0.5)
        predictions = []
        for _ in range(8):
            for value in profile:
                predictions.append(predictor.observe(value))
        # Late predictions for slot 1 (made at slot 0) approach 50.
        assert predictions[-3] == pytest.approx(50.0, abs=1e-2)

    def test_gamma_one_tracks_yesterday(self):
        predictor = EWMAPredictor(2, gamma=1.0)
        predictor.observe(10.0)
        predictor.observe(20.0)
        # Day 2: prediction made at slot 0 for slot 1 = yesterday's 20.
        predictor_out = predictor.observe(999.0)
        assert predictor_out == 20.0

    def test_update_uses_todays_observation(self):
        predictor = EWMAPredictor(1, gamma=0.5)
        predictor.observe(100.0)  # avg = 100
        assert predictor.observe(50.0) == pytest.approx(75.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EWMAPredictor(2).observe(-1.0)

    def test_reset(self):
        predictor = EWMAPredictor(2, gamma=0.5)
        first = [predictor.observe(v) for v in (1.0, 2.0, 3.0, 4.0)]
        predictor.reset()
        second = [predictor.observe(v) for v in (1.0, 2.0, 3.0, 4.0)]
        assert first == second

    def test_wcma_beats_ewma_on_variable_site(self, hsu_trace):
        """The paper's premise: conditioning on the current day helps."""
        from repro.core.wcma import WCMAParams, WCMAPredictor

        ewma = evaluate_predictor(EWMAPredictor(48), hsu_trace, 48)
        wcma = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.7, 10, 2)), hsu_trace, 48
        )
        assert wcma.mape < ewma.mape


class TestPersistence:
    def test_identity(self):
        predictor = PersistencePredictor(4)
        assert predictor.observe(42.0) == 42.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PersistencePredictor(4).observe(-0.1)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            PersistencePredictor(0)


class TestPreviousDay:
    def test_first_day_persistence(self):
        predictor = PreviousDayPredictor(2)
        assert predictor.observe(5.0) == 5.0

    def test_uses_yesterday_next_slot(self):
        predictor = PreviousDayPredictor(2)
        predictor.observe(10.0)  # day 0 slot 0
        predictor.observe(20.0)  # day 0 slot 1
        # Day 1 slot 0: predicts slot 1 from yesterday -> 20.
        assert predictor.observe(99.0) == 20.0
        # Day 1 slot 1: predicts slot 0 (tomorrow) from yesterday -> 10.
        assert predictor.observe(99.0) == 10.0


class TestMovingAverage:
    def test_averages_past_days(self):
        predictor = MovingAveragePredictor(2, days=2)
        for day_values in ([10.0, 0.0], [30.0, 0.0]):
            for value in day_values:
                predictor.observe(value)
        # Day 2 slot 1 -> predicts slot 0: mean(10, 30) = 20.
        predictor.observe(0.0)
        assert predictor.observe(0.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(2, days=0)

    def test_equals_wcma_alpha0_with_neutral_phi(self, repeating_day_trace):
        """On identical repeating days eta == 1, so WCMA(alpha=0) and the
        unconditioned moving average coincide (in the scored region)."""
        from repro.core.wcma import WCMAParams, WCMAPredictor

        ma = evaluate_predictor(
            MovingAveragePredictor(48, days=5), repeating_day_trace, 48
        )
        wcma = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.0, 5, 2)), repeating_day_trace, 48
        )
        assert ma.mape == pytest.approx(wcma.mape, abs=1e-9)
