"""Tests for the realizable adaptive selectors."""

import pytest

from repro.core.adaptive import (
    EpsilonGreedySelector,
    FollowTheLeaderSelector,
    HedgeSelector,
    SoftminSelector,
    compact_grid,
)
from repro.core.wcma import WCMAParams
from repro.metrics.evaluate import evaluate_predictor

SMALL_GRID = [
    WCMAParams(alpha=a, days=5, k=k) for a in (0.0, 0.5, 1.0) for k in (1, 2)
]


class TestConstruction:
    def test_default_grid_size(self):
        selector = FollowTheLeaderSelector(48, days=5)
        assert len(selector.grid) == 11 * 6  # full paper grid

    def test_validation(self):
        with pytest.raises(ValueError):
            FollowTheLeaderSelector(0)
        with pytest.raises(ValueError):
            FollowTheLeaderSelector(48, discount=0.0)
        with pytest.raises(ValueError):
            FollowTheLeaderSelector(48, grid=[])
        with pytest.raises(ValueError):
            FollowTheLeaderSelector(48, feedback="psychic")
        with pytest.raises(ValueError):
            EpsilonGreedySelector(48, epsilon=2.0)
        with pytest.raises(ValueError):
            HedgeSelector(48, learning_rate=0.0)
        with pytest.raises(ValueError):
            SoftminSelector(48, tau=0.0)

    def test_compact_grid_accepts_int_or_sequence_days(self):
        single = compact_grid(days=5, alphas=(0.5,), ks=(2,))
        multi = compact_grid(days=(5, 10), alphas=(0.5,), ks=(2,))
        assert [p.days for p in single] == [5]
        assert sorted(p.days for p in multi) == [5, 10]

    def test_compact_grid_reaches_outside_tuning_grid(self):
        """The default compact grid must include experts the paper's
        tuning grid cannot express (off-grid alpha, K past the cap)."""
        grid = compact_grid()
        alphas = {p.alpha for p in grid}
        ks = {p.k for p in grid}
        assert any(round(a * 10) != a * 10 for a in alphas)  # e.g. 0.55
        assert max(ks) > 6


class TestBehaviour:
    def test_prediction_within_expert_range(self, rng):
        selector = HedgeSelector(4, days=2, grid=SMALL_GRID)
        values = rng.uniform(0, 100, 40)
        for value in values:
            prediction = selector.observe(float(value))
            expert_predictions = selector._last_predictions
            assert (
                expert_predictions.min() - 1e-9
                <= prediction
                <= expert_predictions.max() + 1e-9
            )

    def test_softmin_blend_within_expert_range(self, rng):
        selector = SoftminSelector(4, days=2, grid=SMALL_GRID, tau=0.25)
        values = rng.uniform(0, 100, 40)
        for value in values:
            prediction = selector.observe(float(value))
            expert_predictions = selector._last_predictions
            assert (
                expert_predictions.min() - 1e-9
                <= prediction
                <= expert_predictions.max() + 1e-9
            )

    def test_softmin_low_tau_approaches_ftl(self, rng):
        """tau -> 0 collapses the blend onto the leaderboard winner.

        Only after warm-up: while expert scores still tie (cold start),
        softmin averages the tied experts where FTL picks the first.
        """
        sharp = SoftminSelector(4, days=2, grid=SMALL_GRID, tau=1e-9,
                                discount=0.95)
        ftl = FollowTheLeaderSelector(4, days=2, grid=SMALL_GRID,
                                      discount=0.95)
        values = rng.uniform(0, 100, 60)
        for t, value in enumerate(values):
            a = sharp.observe(float(value))
            b = ftl.observe(float(value))
            if t >= 40:
                assert a == pytest.approx(b, abs=1e-6)

    def test_ftl_tracks_best_expert_on_easy_data(self):
        """If one expert is exactly right every time, FTL locks onto it."""
        # Repeating days: alpha=0, K=1 expert predicts the boundary
        # exactly; persistence (alpha=1) is wrong on the ramp.
        profile = [0.0, 100.0, 200.0, 100.0]
        selector = FollowTheLeaderSelector(
            4, days=2, grid=SMALL_GRID, feedback="sample"
        )
        for _ in range(8):
            for value in profile:
                selector.observe(value)
        chosen = selector.chosen_params
        assert chosen.alpha == 0.0

    def test_epsilon_greedy_deterministic_per_seed(self, hsu_trace):
        a = EpsilonGreedySelector(48, days=3, grid=SMALL_GRID, seed=3)
        b = EpsilonGreedySelector(48, days=3, grid=SMALL_GRID, seed=3)
        starts = hsu_trace.as_days()[:4].reshape(-1)[:: 30]
        pa = [a.observe(float(v)) for v in starts]
        pb = [b.observe(float(v)) for v in starts]
        assert pa == pb

    def test_reset_restores_cold_start(self):
        selector = FollowTheLeaderSelector(4, days=2, grid=SMALL_GRID)
        seq = [10.0, 50.0, 90.0, 40.0] * 6
        first = [selector.observe(v) for v in seq]
        selector.reset()
        second = [selector.observe(v) for v in seq]
        assert first == second

    def test_slot_mean_feedback_flag(self):
        assert FollowTheLeaderSelector(4).uses_slot_mean_feedback
        assert not FollowTheLeaderSelector(4, feedback="sample").uses_slot_mean_feedback

    def test_provide_slot_mean_validation(self):
        with pytest.raises(ValueError):
            FollowTheLeaderSelector(4).provide_slot_mean(-1.0)

    def test_rejects_negative_sample(self):
        with pytest.raises(ValueError):
            FollowTheLeaderSelector(4).observe(-5.0)


class TestEndToEnd:
    def test_adaptive_beats_worst_static_expert(self, hsu_trace):
        """The selector must comfortably beat the bad corners of its own
        expert grid (sanity: it is actually selecting)."""
        from repro.core.wcma import WCMAPredictor

        selector = FollowTheLeaderSelector(48, days=5, grid=SMALL_GRID)
        adaptive = evaluate_predictor(selector, hsu_trace, 48)
        worst = max(
            evaluate_predictor(WCMAPredictor(48, p), hsu_trace, 48).mape
            for p in SMALL_GRID
        )
        assert adaptive.mape < worst

    def test_adaptive_close_to_best_static_expert(self, hsu_trace):
        """FTL should land within a modest factor of the best fixed
        expert chosen in hindsight."""
        from repro.core.wcma import WCMAPredictor

        selector = FollowTheLeaderSelector(48, days=5, grid=SMALL_GRID)
        adaptive = evaluate_predictor(selector, hsu_trace, 48)
        best = min(
            evaluate_predictor(WCMAPredictor(48, p), hsu_trace, 48).mape
            for p in SMALL_GRID
        )
        assert adaptive.mape < best * 1.35
