"""Cross-module integration tests.

These exercise the public API end to end on reduced data, asserting the
paper's qualitative conclusions hold through the whole pipeline
(generator -> slots -> predictor -> metrics -> experiments).
"""

import numpy as np
import pytest

from repro import (
    WCMABatch,
    WCMAParams,
    WCMAPredictor,
    build_dataset,
    clairvoyant_dynamic,
    evaluate_predictor,
    grid_search,
    make_predictor,
)


class TestPublicApi:
    def test_quickstart_docstring_flow(self):
        trace = build_dataset("PFCI", n_days=45)
        predictor = WCMAPredictor(48, WCMAParams(alpha=0.7, days=10, k=2))
        run = evaluate_predictor(predictor, trace, 48)
        assert 0.0 < run.mape < 0.3

    def test_registry_roundtrip(self):
        trace = build_dataset("HSU", n_days=30)
        predictor = make_predictor("wcma", 48, alpha=0.6, days=8, k=2)
        run = evaluate_predictor(predictor, trace, 48)
        assert np.isfinite(run.mape)


class TestPaperShapeEndToEnd:
    """The headline qualitative results, via the real experiment path."""

    def test_sunny_site_easier_than_variable_site(self):
        sunny = grid_search(build_dataset("PFCI", n_days=60), 48)
        variable = grid_search(build_dataset("ORNL", n_days=60), 48)
        assert sunny.best_error < variable.best_error

    def test_interior_alpha_optimum_at_n48(self):
        """Neither pure persistence nor pure conditioned average wins."""
        sweep = grid_search(build_dataset("HSU", n_days=60), 48)
        assert 0.0 < sweep.best.alpha < 1.0

    def test_dynamic_at_n48_beats_static_at_same_n(self):
        trace = build_dataset("HSU", n_days=60)
        static = grid_search(trace, 48)
        dynamic = clairvoyant_dynamic(trace, 48, static.best.days, mode="both")
        assert dynamic.mape < static.best_error * 0.75

    def test_more_than_ten_percent_accuracy_gain_from_dynamic(self):
        """The paper's closing claim: >10% (absolute MAPE percentage
        points at small N, i.e. >0.01 in fraction terms... the paper
        means percentage points of accuracy) gain from dynamic
        parameters.  At N=24 the both-dynamic gain exceeds 0.05."""
        trace = build_dataset("SPMD", n_days=60)
        static = grid_search(trace, 24)
        dynamic = clairvoyant_dynamic(trace, 24, static.best.days, mode="both")
        assert static.best_error - dynamic.mape > 0.05

    def test_batch_grid_search_consistent_with_online_eval(self):
        trace = build_dataset("ECSU", n_days=45)
        sweep = grid_search(trace, 48, alphas=(0.6,), days=(8,), ks=(2,))
        online = evaluate_predictor(
            WCMAPredictor(48, WCMAParams(0.6, 8, 2)), trace, 48
        )
        assert sweep.best_error == pytest.approx(online.mape, rel=1e-9)

    def test_downsampled_trace_consistency(self):
        """Decimating a 1-minute trace to 5 minutes then slotting at
        N=48 uses the same boundary samples as slotting directly."""
        trace = build_dataset("NPCS", n_days=20)
        down = trace.downsample(5)
        direct = WCMABatch.from_trace(trace, 48)
        via_down = WCMABatch.from_trace(down, 48)
        assert np.array_equal(direct.starts_flat, via_down.starts_flat)


class TestSeedStability:
    def test_rebuilt_dataset_identical(self):
        from repro.solar.datasets import clear_cache

        a = build_dataset("ORNL", n_days=10).values.copy()
        clear_cache()
        b = build_dataset("ORNL", n_days=10).values
        assert np.array_equal(a, b)
