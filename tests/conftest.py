"""Shared fixtures for the test suite.

Traces used by tests are deliberately short (tens of days) so the whole
suite stays fast; the full 365-day reproductions live in benchmarks/.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the CLI's default result cache at a per-test directory.

    The CLI caches run/robustness results on disk by default; tests
    must never hit (or pollute) the developer's real cache, and a stale
    entry surviving a code edit could mask a regression mid-suite.
    """
    monkeypatch.setenv("REPRO_SOLAR_CACHE_DIR", str(tmp_path / "result-cache"))

from repro.solar.clearsky import clearsky_profile
from repro.solar.datasets import build_dataset
from repro.solar.sites import get_site
from repro.solar.trace import SolarTrace


@pytest.fixture(scope="session")
def hsu_trace():
    """30 synthetic days of the HSU (variable) site at 1-minute resolution."""
    return build_dataset("HSU", n_days=30)


@pytest.fixture(scope="session")
def spmd_trace():
    """30 synthetic days of the SPMD (5-minute) site."""
    return build_dataset("SPMD", n_days=30)


@pytest.fixture(scope="session")
def pfci_trace():
    """45 synthetic days of the PFCI (sunny) site."""
    return build_dataset("PFCI", n_days=45)


@pytest.fixture(scope="session")
def clearsky_trace():
    """30 cloud-free days (deterministic, smooth) at 5-minute resolution."""
    site = get_site("PFCI")
    days = [
        clearsky_profile(site.latitude_deg, day, 288) for day in range(1, 31)
    ]
    return SolarTrace(np.concatenate(days), 5, "clearsky")


@pytest.fixture(scope="session")
def repeating_day_trace():
    """30 identical days: a triangular bump over slots, 288 samples/day.

    Every day repeats exactly, so mu_D equals the day profile, eta == 1
    in daylight, Phi == 1, and WCMA predictions are hand-computable.
    """
    samples = np.zeros(288)
    # Daylight between samples 72 (06:00) and 216 (18:00), triangular.
    up = np.linspace(0.0, 800.0, 72, endpoint=False)
    down = np.linspace(800.0, 0.0, 72, endpoint=False)
    samples[72:144] = up
    samples[144:216] = down
    return SolarTrace(np.tile(samples, 30), 5, "repeating")


@pytest.fixture
def rng():
    """Deterministic RNG for property-ish randomised tests."""
    return np.random.default_rng(12345)
