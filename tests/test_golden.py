"""Golden-suite regression harness.

Pins today's experiment outputs byte-for-byte so future scale and
refactoring work can change internals fearlessly: any drift in the
rendered ``run_all(365)`` report, the per-experiment row digests, or
the robustness matrix fails tier-1 immediately and names the
experiment that moved.

Refreshing after an *intentional* output change::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

which rewrites every snapshot under ``tests/golden/`` from the current
outputs (the tests then pass against the fresh files in the same run).

Digests are sha256 over a canonical JSON serialisation of each
:class:`~repro.experiments.common.ExperimentResult` (experiment id,
title, headers, rows, notes) with floats rounded to 12 significant
digits -- stricter than the rendered text (4 significant digits) while
still absorbing the one-ulp reduction-order differences between SIMD
widths, so the pin survives a change of machine.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.robustness import (
    LEARNED_MATRIX_PREDICTORS,
    TUNED_WCMA_LABEL,
)
from repro.experiments.robustness import run as run_robustness
from repro.experiments.runner import EXPERIMENTS, render_report, run_all

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Robustness golden configuration: two sites of different native
#: resolution, the full default scenario set, tuning on.  45 days keeps
#: it fast while exceeding 2 * max(D), so the full grid search runs.
ROBUSTNESS_KWARGS = dict(n_days=45, sites=("PFCI", "HSU"), seed=20100308)

#: Learned-tier matrix: same sites/seed/tuning, the predictor list the
#: issue's acceptance criterion names (learned models + the blended
#: adaptive selector next to the fixed and per-cell re-tuned WCMA).
LEARNED_ROBUSTNESS_KWARGS = dict(
    n_days=45,
    sites=("PFCI", "HSU"),
    seed=20100308,
    predictors=LEARNED_MATRIX_PREDICTORS,
)

_UPDATE_HINT = (
    "golden mismatch -- if the output change is intentional, refresh with: "
    "PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden"
)


def _canonical(value):
    """Round floats to 12 significant digits, recursively.

    Keeps the digest sensitive to any real numeric drift (1e-12
    relative) while ignoring hardware-dependent last-ulp differences in
    numpy reduction order.
    """
    if isinstance(value, float):
        return float(f"{value:.12g}")
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _digest(result) -> str:
    """sha256 of the canonical JSON form of one ExperimentResult."""
    canonical = json.dumps(
        _canonical(
            {
                "experiment": result.experiment,
                "title": result.title,
                "headers": result.headers,
                "rows": result.rows,
                "notes": result.notes,
            }
        ),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _check_text(request, path: Path, content: str) -> None:
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    assert path.exists(), f"missing golden file {path}; {_UPDATE_HINT}"
    assert content == path.read_text(), f"{path.name}: {_UPDATE_HINT}"


@pytest.fixture(scope="module")
def full_results():
    """The complete paper reproduction at full fidelity (one run)."""
    return run_all(n_days=365)


@pytest.fixture(scope="module")
def robustness_result():
    return run_robustness(**ROBUSTNESS_KWARGS)


@pytest.fixture(scope="module")
def learned_robustness_result():
    return run_robustness(tune_wcma=True, **LEARNED_ROBUSTNESS_KWARGS)


class TestRunAllGolden:
    def test_report_matches_golden(self, request, full_results):
        _check_text(
            request,
            GOLDEN_DIR / "report_365.txt",
            render_report(full_results) + "\n",
        )

    def test_per_experiment_digests(self, request, full_results):
        digests = {name: _digest(full_results[name]) for name in EXPERIMENTS}
        path = GOLDEN_DIR / "digests.json"
        if request.config.getoption("--update-golden"):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        assert path.exists(), f"missing golden file {path}; {_UPDATE_HINT}"
        golden = json.loads(path.read_text())
        assert set(golden) == set(digests), _UPDATE_HINT
        moved = [name for name in EXPERIMENTS if golden[name] != digests[name]]
        assert not moved, f"experiments drifted: {moved}; {_UPDATE_HINT}"

    def test_every_experiment_present(self, full_results):
        assert set(full_results) == set(EXPERIMENTS)


class TestRobustnessGolden:
    def test_matrix_matches_golden(self, request, robustness_result):
        _check_text(
            request,
            GOLDEN_DIR / "robustness_45d.txt",
            robustness_result.render() + "\n",
        )

    def test_matrix_digest(self, request, robustness_result):
        path = GOLDEN_DIR / "robustness_45d.sha256"
        digest = _digest(robustness_result) + "\n"
        _check_text(request, path, digest)


class TestLearnedRobustnessGolden:
    def test_matrix_matches_golden(self, request, learned_robustness_result):
        _check_text(
            request,
            GOLDEN_DIR / "robustness_45d_learned.txt",
            learned_robustness_result.render() + "\n",
        )

    def test_matrix_digest(self, request, learned_robustness_result):
        path = GOLDEN_DIR / "robustness_45d_learned.sha256"
        digest = _digest(learned_robustness_result) + "\n"
        _check_text(request, path, digest)

    def test_learned_tier_beats_tuned_wcma_on_regime_shift(
        self, learned_robustness_result
    ):
        """The issue's acceptance criterion, pinned as a live assertion.

        On every regime-shift cell, at least one of {ridge, gbm,
        adaptive} must beat every fixed-parameter WCMA configuration --
        including the per-cell re-tuned one (full paper grid search in
        hindsight).  The adaptive selector earns this by carrying
        experts the tuning grid cannot express (off-grid alpha,
        K past the grid's cap) and blending them.
        """
        cells = {}
        for row in learned_robustness_result.rows:
            if row["scenario"] != "regime-shift":
                continue
            cells.setdefault(row["site"], {})[row["predictor"]] = row["mape"]
        assert set(cells) == {"PFCI", "HSU"}
        for site, by_pred in cells.items():
            learned_best = min(
                by_pred[name] for name in ("ridge", "gbm", "adaptive")
            )
            wcma_best = min(by_pred["wcma"], by_pred[TUNED_WCMA_LABEL])
            assert learned_best < wcma_best, (
                f"regime-shift/{site}: best learned-tier MAPE "
                f"{learned_best:.3f}% does not beat best WCMA "
                f"{wcma_best:.3f}%"
            )
