"""Tests for the experiment modules (reduced-size shape checks).

Full-scale (365-day) reproductions live in benchmarks/; here each
experiment runs on short traces and we assert structure plus the
paper's qualitative claims that survive small samples.
"""

import pytest

from repro.experiments import fig2, fig6, fig7, table1, table2, table3, table4, table5
from repro.experiments.common import (
    ExperimentResult,
    batch_for,
    format_table,
    sites_for,
    supported_n_for_site,
    trace_for,
)
from repro.experiments.runner import EXPERIMENTS, render_report, run_all

DAYS = 45
SITES = ("HSU", "PFCI")


class TestCommon:
    def test_sites_for_default(self):
        assert sites_for(None) == ("SPMD", "ECSU", "ORNL", "HSU", "NPCS", "PFCI")

    def test_sites_for_normalises(self):
        assert sites_for(["pfci"]) == ("PFCI",)

    def test_sites_for_rejects_unknown(self):
        with pytest.raises(ValueError):
            sites_for(["XX"])

    def test_supported_n(self):
        assert supported_n_for_site("SPMD", (288, 96, 24)) == (288, 96, 24)
        assert supported_n_for_site("SPMD", (1440,)) == ()
        assert supported_n_for_site("ORNL", (1440, 288)) == (1440, 288)

    def test_batch_for_cached(self):
        a = batch_for("PFCI", DAYS, 24)
        b = batch_for("pfci", DAYS, 24)
        assert a is b

    def test_batch_cache_is_bounded_lru(self):
        from repro.experiments.common import (
            BATCH_CACHE_MAX_ENTRIES,
            _BATCH_CACHE,
            clear_batch_cache,
        )

        clear_batch_cache()
        try:
            # Fill beyond the bound with distinct (site, days, N) keys.
            n_values = (288, 144, 96, 72, 48, 36, 24, 18, 16, 12)
            assert len(n_values) > BATCH_CACHE_MAX_ENTRIES
            for n in n_values:
                batch_for("PFCI", 3, n)
            assert len(_BATCH_CACHE) == BATCH_CACHE_MAX_ENTRIES
            # Oldest keys were evicted, newest survive.
            assert ("PFCI", 3, n_values[0], None) not in _BATCH_CACHE
            assert ("PFCI", 3, n_values[-1], None) in _BATCH_CACHE
            # A hit refreshes recency: touch the oldest survivor, add one
            # more key, and the survivor must still be cached.
            survivor = next(iter(_BATCH_CACHE))
            batch_for(survivor[0], survivor[1], survivor[2])
            batch_for("PFCI", 3, 8)
            assert survivor in _BATCH_CACHE
        finally:
            clear_batch_cache()

    def test_trace_memo_shared_across_n(self):
        """One native trace build serves every sampling rate: the batch
        engines for different N of one (site, n_days) must wrap the
        *same* trace object."""
        from repro.experiments.common import clear_batch_cache

        clear_batch_cache()
        try:
            a = batch_for("PFCI", DAYS, 48)
            b = batch_for("PFCI", DAYS, 24)
            assert a.view.trace is b.view.trace
            assert trace_for("pfci", DAYS) is a.view.trace
        finally:
            clear_batch_cache()

    def test_trace_memo_survives_batch_eviction(self):
        from repro.experiments.common import (
            BATCH_CACHE_MAX_ENTRIES,
            clear_batch_cache,
        )

        clear_batch_cache()
        try:
            first = trace_for("PFCI", 3)
            n_values = (288, 144, 96, 72, 48, 36, 24, 18, 16, 12)
            assert len(n_values) > BATCH_CACHE_MAX_ENTRIES
            for n in n_values:
                batch_for("PFCI", 3, n)
            # every batch was evicted and rebuilt against the same trace
            assert batch_for("PFCI", 3, 288).view.trace is first
        finally:
            clear_batch_cache()

    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert len(lines) == 4

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_result_render_and_column(self):
        result = ExperimentResult(
            experiment="x",
            title="t",
            headers=["a"],
            rows=[{"a": 1.0}, {"a": None}],
        )
        text = result.render()
        assert "X: t" in text
        assert "n/a" in text
        assert result.column("a") == [1.0, None]
        with pytest.raises(KeyError):
            result.column("zz")


class TestTable1:
    def test_rows_match_paper_geometry(self):
        result = table1.run(n_days=DAYS)
        assert len(result.rows) == 6
        by_site = {row["data_set"]: row for row in result.rows}
        assert by_site["SPMD"]["observations"] == 288 * DAYS
        assert by_site["ORNL"]["observations"] == 1440 * DAYS
        assert by_site["PFCI"]["resolution"] == "1 minutes"


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(n_days=DAYS, sites=SITES)

    def test_mape_below_mape_prime(self, result):
        """The paper's central Table II claim."""
        for row in result.rows:
            assert row["mape"] < row["mape_prime"]

    def test_mape_alpha_higher(self, result):
        for row in result.rows:
            assert row["alpha"] >= row["alpha_prime"]

    def test_row_per_site(self, result):
        assert [r["data_set"] for r in result.rows] == list(SITES)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(n_days=DAYS, sites=("PFCI",), n_values=(96, 48, 24))

    def test_mape_decreases_with_n(self, result):
        rows = {row["n"]: row for row in result.rows}
        assert rows[96]["mape"] < rows[48]["mape"] < rows[24]["mape"]

    def test_alpha_rises_with_n(self, result):
        rows = {row["n"]: row for row in result.rows}
        assert rows[96]["alpha"] >= rows[24]["alpha"]

    def test_k2_close_to_optimum(self, result):
        for row in result.rows:
            if row["mape_k2"] is not None:
                assert row["mape_k2"] >= row["mape"]
                assert row["mape_k2"] - row["mape"] < 0.02

    def test_five_minute_site_skips_unsupported_n(self):
        result = table3.run(n_days=DAYS, sites=("SPMD",), n_values=(1440, 48))
        assert [row["n"] for row in result.rows] == [48]

    def test_alpha1_exact_at_native_resolution(self):
        """The 0-dagger entries: N == native samples/day on a 5-minute
        site makes alpha=1 exact."""
        result = table3.run(n_days=DAYS, sites=("SPMD",), n_values=(288,))
        row = result.rows[0]
        assert row["alpha"] == 1.0
        assert row["mape"] == pytest.approx(0.0, abs=1e-12)


class TestTable4:
    def test_matches_paper_exactly(self):
        result = table4.run()
        values = {r["hardware_activity"]: r["energy"] for r in result.rows}
        assert values["A/D conversion"] == "55.0 uJ"
        assert values["A/D conversion + Prediction (K=1, alpha=0.7)"] == "58.6 uJ"
        assert values["A/D conversion + Prediction (K=7, alpha=0.7)"] == "63.4 uJ"
        assert values["A/D conversion + Prediction (K=7, alpha=0.0)"] == "61.5 uJ"
        assert values["Low power (sleep) mode"] == "356 mJ per day"
        assert "2640" in values["A/D conversion 48 samples per day @55uJ"]
        assert "2880" in values["A/D conversion + prediction 48 times per day @60uJ"]


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return table5.run(n_days=DAYS, sites=("HSU",), n_values=(48, 24))

    def test_ordering_of_modes(self, result):
        for row in result.rows:
            assert row["both_mape"] <= row["alpha_only_mape"] + 1e-12
            assert row["alpha_only_mape"] <= row["k_only_mape"] + 1e-12
            assert row["k_only_mape"] <= row["static_mape"] + 1e-12

    def test_default_sites_are_papers_four(self):
        assert table5.DYNAMIC_SITES == ("SPMD", "ECSU", "ORNL", "HSU")


class TestFigures:
    def test_fig2_series_shape(self):
        data = fig2.series(site="HSU", start_day=20, n_figure_days=6, n_days=DAYS)
        assert data.shape == (6, 288)
        assert (data >= 0).all()

    def test_fig2_run_rows(self):
        result = fig2.run(site="HSU", start_day=20, n_days=DAYS)
        assert len(result.rows) == 6
        assert result.rows[0]["day"] == 21

    def test_fig2_rejects_bad_window(self):
        with pytest.raises(ValueError):
            fig2.series(site="HSU", start_day=44, n_figure_days=6, n_days=DAYS)

    def test_fig6_exact_paper_numbers(self):
        result = fig6.run()
        percents = {r["n"]: r["overhead_percent"] for r in result.rows}
        assert percents[288] == pytest.approx(4.85, abs=0.01)
        assert percents[48] == pytest.approx(0.81, abs=0.01)

    def test_fig7_flattens(self):
        result = fig7.run(n_days=DAYS, sites=("HSU",), days_grid=tuple(range(2, 16)))
        errors = [row["mape"] for row in result.rows]
        # Early drop is much larger than late drop.
        early_gain = errors[0] - errors[4]
        late_gain = abs(errors[8] - errors[-1])
        assert early_gain > late_gain

    def test_fig7_series_keys(self):
        curves = fig7.series(n_days=DAYS, sites=SITES, days_grid=(2, 5, 8))
        assert set(curves) == set(SITES)
        assert all(len(v) == 3 for v in curves.values())


class TestRunner:
    def test_run_subset(self):
        results = run_all(n_days=DAYS, sites=("PFCI",), only=("table1", "fig6"))
        assert set(results) == {"table1", "fig6"}

    def test_rejects_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_all(only=("table9",))

    def test_render_report_contains_all(self):
        results = run_all(n_days=DAYS, sites=("PFCI",), only=("table1", "table4"))
        report = render_report(results)
        assert "TABLE1" in report and "TABLE4" in report

    def test_experiment_ids(self):
        assert EXPERIMENTS == (
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "fig2",
            "fig6",
            "fig7",
        )


class TestParallelRunner:
    """run_all(jobs=n) must reproduce the sequential output exactly."""

    def test_parallel_matches_sequential(self):
        only = ("table1", "table2", "fig7")
        sequential = run_all(n_days=DAYS, sites=SITES, only=only)
        parallel = run_all(n_days=DAYS, sites=SITES, only=only, jobs=2)
        assert list(sequential) == list(parallel)
        for name in only:
            assert sequential[name].rows == parallel[name].rows
            assert sequential[name].headers == parallel[name].headers
            assert sequential[name].notes == parallel[name].notes
        assert render_report(sequential) == render_report(parallel)

    def test_parallel_table5_default_sites(self):
        """table5 with sites=None uses its own four-site list; the
        per-site work units must reproduce that, not the global six."""
        sequential = run_all(n_days=DAYS, only=("table5",))
        parallel = run_all(n_days=DAYS, only=("table5",), jobs=2)
        assert sequential["table5"].rows == parallel["table5"].rows

    def test_parallel_non_trace_experiments(self):
        parallel = run_all(n_days=DAYS, only=("table4", "fig6"), jobs=2)
        sequential = run_all(n_days=DAYS, only=("table4", "fig6"))
        assert render_report(parallel) == render_report(sequential)

    def test_jobs_one_is_sequential_path(self):
        a = run_all(n_days=DAYS, sites=("PFCI",), only=("table1",), jobs=1)
        b = run_all(n_days=DAYS, sites=("PFCI",), only=("table1",))
        assert a["table1"].rows == b["table1"].rows

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_all(n_days=DAYS, only=("table1",), jobs=0)

    def test_duplicate_experiment_ids_run_once(self):
        """A repeated id must not double rows in the parallel merge."""
        sequential = run_all(n_days=DAYS, sites=("PFCI",), only=("table1", "table1"))
        parallel = run_all(
            n_days=DAYS, sites=("PFCI",), only=("table1", "table1"), jobs=2
        )
        assert len(sequential["table1"].rows) == 1
        assert sequential["table1"].rows == parallel["table1"].rows

    def test_empty_site_selection(self):
        """sites=() must yield zero-row results, not drop experiments."""
        sequential = run_all(n_days=DAYS, sites=(), only=("table1", "table4"))
        parallel = run_all(n_days=DAYS, sites=(), only=("table1", "table4"), jobs=2)
        assert sequential["table1"].rows == []
        assert parallel["table1"].rows == []
        assert render_report(sequential) == render_report(parallel)


class TestRunnerCacheAndBackend:
    """run_all through the shared executor: caching, stats, backends."""

    def _cache(self, tmp_path):
        from repro.parallel.cache import ResultCache

        return ResultCache(tmp_path / "cache", salt="test")

    def test_cached_rerun_is_identical_and_all_hits(self, tmp_path):
        cache = self._cache(tmp_path)
        stats = []
        only = ("table1", "table2")
        first = run_all(
            n_days=DAYS, sites=SITES, only=only, cache=cache, stats=stats
        )
        assert stats[0].cache_hits == 0 and stats[0].cache_misses == 4
        second = run_all(
            n_days=DAYS, sites=SITES, only=only, cache=cache, stats=stats
        )
        assert stats[1].cache_hits == 4 and stats[1].cache_misses == 0
        assert render_report(first) == render_report(second)

    def test_cached_matches_uncached(self, tmp_path):
        cache = self._cache(tmp_path)
        plain = run_all(n_days=DAYS, sites=SITES, only=("fig7",))
        cached = run_all(
            n_days=DAYS, sites=SITES, only=("fig7",), cache=cache
        )
        resumed = run_all(
            n_days=DAYS, sites=SITES, only=("fig7",), cache=cache
        )
        assert render_report(plain) == render_report(cached) == render_report(resumed)

    def test_cache_key_separates_configurations(self, tmp_path):
        cache = self._cache(tmp_path)
        stats = []
        run_all(n_days=DAYS, sites=SITES, only=("table1",), cache=cache)
        run_all(
            n_days=DAYS - 1, sites=SITES, only=("table1",),
            cache=cache, stats=stats,
        )
        assert stats[0].cache_hits == 0

    def test_thread_backend_matches_sequential(self):
        sequential = run_all(n_days=DAYS, sites=SITES, only=("table1", "fig7"))
        threaded = run_all(
            n_days=DAYS, sites=SITES, only=("table1", "fig7"),
            jobs=2, backend="thread",
        )
        assert render_report(sequential) == render_report(threaded)

    def test_stats_record_shape(self):
        stats = []
        run_all(n_days=DAYS, sites=("PFCI",), only=("table1",), stats=stats)
        assert len(stats) == 1
        payload = stats[0].as_dict()
        assert payload["backend"] == "inline"
        assert payload["n_units"] == 1
        assert "dispatch_per_unit_s" in payload

    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            run_all(n_days=DAYS, only=("table1",), jobs=2, backend="mpi")
