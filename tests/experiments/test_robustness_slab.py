"""Column-stacked learned slabs inside the robustness matrix.

The learned predictors (``ridge``/``gbm``) run as one B-column
:class:`~repro.learn.predictor.LearnedKernel` slab covering every
(site, scenario) cell.  These tests pin the load-bearing guarantees:
the stacked path reproduces the per-cell scalar path *exactly* (the
goldens depend on it), slab cache keys fold in the training config and
feature schema so hyper-parameter flips can never serve stale cells,
and the per-stage timings surface through ``ExecutionStats``.
"""

import dataclasses

import pytest

from repro.core.registry import make_predictor
from repro.experiments import robustness
from repro.experiments.common import trace_for
from repro.learn.models import TrainingConfig
from repro.metrics.evaluate import evaluate_predictor
from repro.parallel.cache import ResultCache
from repro.solar.scenarios import make_scenario

DAYS = 24  # > DEFAULT_WARMUP_DAYS, so the ROI scores real days
SITES = ("PFCI", "HSU")
SCENARIOS = ("dropout", "jitter")  # run() prepends "clean"
SEED = 7
N_SLOTS = 48
FAST = TrainingConfig(
    min_train_days=2,
    refit_days=2,
    window_days=5,
    gbm_rounds=8,
    gbm_thresholds=7,
)


@pytest.fixture(scope="module")
def matrix():
    """Learned matrix with an interleaved predictor order, so the slab
    reassembly has to slot stacked columns between per-cell rows."""
    return robustness.run(
        n_days=DAYS,
        sites=SITES,
        scenarios=SCENARIOS,
        predictors=("ridge", "ewma", "gbm"),
        seed=SEED,
        tune_wcma=False,
        training=FAST,
    )


class TestSlabEqualsPerCell:
    def test_row_order_preserved(self, matrix):
        """Rows come back cell-major in the requested predictor order,
        exactly as the all-per-cell path emitted them."""
        expected = [
            (scenario, site, name)
            for site in SITES
            for scenario in ("clean",) + SCENARIOS
            for name in ("ridge", "ewma", "gbm")
        ]
        got = [(r["scenario"], r["site"], r["predictor"]) for r in matrix.rows]
        assert got == expected

    def test_learned_rows_exactly_match_scalar_evaluation(self, matrix):
        """Every stacked cell equals an independent scalar
        ``evaluate_predictor`` run bit-for-bit -- ``==``, not approx."""
        for row in matrix.rows:
            if row["predictor"] not in robustness.STACKED_MATRIX_PREDICTORS:
                continue
            perturbed = make_scenario(row["scenario"], seed=SEED).apply(
                trace_for(row["site"], DAYS)
            )
            expected = evaluate_predictor(
                make_predictor(row["predictor"], N_SLOTS, training=FAST),
                perturbed,
                N_SLOTS,
            ).mape
            assert row["mape"] == float(expected), (
                row["scenario"], row["site"], row["predictor"],
            )

    def test_degradation_column_filled(self, matrix):
        for row in matrix.rows:
            if row["scenario"] != "clean":
                assert row["dMAPE vs clean (pp)"] is not None


class TestSlabCacheKeys:
    def _run(self, cache, training, stats):
        return robustness.run(
            n_days=DAYS,
            sites=SITES,
            scenarios=SCENARIOS,
            predictors=("ridge",),
            seed=SEED,
            tune_wcma=False,
            training=training,
            cache=cache,
            stats=stats,
        )

    def test_resume_roundtrip_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        stats = []
        first = self._run(cache, FAST, stats)
        again = self._run(cache, FAST, stats)
        assert stats[0].cache_misses == 1 and stats[0].cache_hits == 0
        assert stats[1].cache_hits == 1 and stats[1].cache_misses == 0
        assert again.rows == first.rows

    def test_training_config_flip_misses(self, tmp_path):
        """Satellite: flipping ``ridge_lambda`` must miss the slab
        cache -- the training config is part of the unit's identity."""
        cache = ResultCache(tmp_path / "c", salt="s")
        stats = []
        self._run(cache, FAST, stats)
        flipped = dataclasses.replace(FAST, ridge_lambda=0.5)
        self._run(cache, flipped, stats)
        assert stats[1].cache_misses == 1 and stats[1].cache_hits == 0
        # The original config still resolves to its own cached slab.
        self._run(cache, FAST, stats)
        assert stats[2].cache_hits == 1 and stats[2].cache_misses == 0

    def test_feature_schema_version_in_key(self, tmp_path, monkeypatch):
        """A feature redefinition (schema bump) invalidates slabs."""
        import repro.learn.features as features

        cache = ResultCache(tmp_path / "c", salt="s")
        stats = []
        self._run(cache, FAST, stats)
        monkeypatch.setattr(
            features,
            "FEATURE_SCHEMA_VERSION",
            features.FEATURE_SCHEMA_VERSION + 1,
        )
        self._run(cache, FAST, stats)
        assert stats[1].cache_misses == 1 and stats[1].cache_hits == 0


class TestSlabStats:
    def test_stage_seconds_surfaced(self, tmp_path):
        stats = []
        robustness.run(
            n_days=DAYS,
            sites=SITES,
            scenarios=SCENARIOS,
            predictors=("gbm",),
            seed=SEED,
            tune_wcma=False,
            training=FAST,
            stats=stats,
        )
        stages = stats[0].stage_seconds
        assert set(stages) == {"features", "refit", "predict"}
        assert stages["refit"] > 0.0 and stages["features"] > 0.0
        payload = stats[0].as_dict()
        assert set(payload["stage_seconds"]) == set(stages)

    def test_no_learned_predictors_no_stage_seconds(self, tmp_path):
        stats = []
        robustness.run(
            n_days=DAYS,
            sites=SITES,
            scenarios=SCENARIOS,
            predictors=("ewma",),
            seed=SEED,
            tune_wcma=False,
            stats=stats,
        )
        assert stats[0].stage_seconds is None
        assert "stage_seconds" not in stats[0].as_dict()

    def test_training_dict_form_accepted(self):
        """``run(training=<dict>)`` (the CLI/service form) matches the
        dataclass form byte-for-byte."""
        kwargs = dict(
            n_days=DAYS,
            sites=SITES,
            scenarios=("dropout",),
            predictors=("ridge",),
            seed=SEED,
            tune_wcma=False,
        )
        from_cfg = robustness.run(training=FAST, **kwargs)
        from_dict = robustness.run(training=FAST.to_dict(), **kwargs)
        assert from_dict.rows == from_cfg.rows
