"""Tests for the robustness experiment matrix and fleet harness."""

import numpy as np
import pytest

from repro.experiments.robustness import (
    DEFAULT_MATRIX_PREDICTORS,
    DEFAULT_SCENARIOS,
    TUNED_WCMA_LABEL,
    run,
    run_fleet_robustness,
    scenarios_for,
)
from repro.metrics import format_robustness_summary, summarise_robustness

#: Small but tuning-capable configuration: > 2 * max(D) days, two sites
#: of different native resolution, three degradations plus clean.
DAYS = 45
SITES = ("PFCI", "HSU")
SCENARIOS = ("dropout", "regime-shift", "jitter")


@pytest.fixture(scope="module")
def matrix():
    return run(
        n_days=DAYS, sites=SITES, scenarios=SCENARIOS, seed=7, tune_wcma=True
    )


class TestScenariosFor:
    def test_default(self):
        assert scenarios_for(None) == DEFAULT_SCENARIOS
        assert len(DEFAULT_SCENARIOS) >= 8
        assert DEFAULT_SCENARIOS[0] == "clean"

    def test_clean_always_included_first(self):
        assert scenarios_for(("dropout",)) == ("clean", "dropout")
        assert scenarios_for(("clean", "dropout")) == ("clean", "dropout")

    def test_dedupe_and_case(self):
        assert scenarios_for(("Dropout", "dropout")) == ("clean", "dropout")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            scenarios_for(("nope",))


class TestMatrix:
    def test_shape(self, matrix):
        scenario_list = ("clean",) + SCENARIOS
        per_cell = len(DEFAULT_MATRIX_PREDICTORS) + 1  # + wcma-tuned
        assert len(matrix.rows) == len(scenario_list) * len(SITES) * per_cell
        assert matrix.meta["scenarios"] == scenario_list
        assert set(matrix.column("predictor")) == set(
            DEFAULT_MATRIX_PREDICTORS
        ) | {TUNED_WCMA_LABEL}

    def test_clean_rows_have_zero_degradation(self, matrix):
        for row in matrix.rows:
            if row["scenario"] == "clean":
                assert row["dMAPE vs clean (pp)"] == 0.0

    def test_degradation_consistent_with_mape(self, matrix):
        clean = {
            (r["site"], r["predictor"]): r["mape"]
            for r in matrix.rows
            if r["scenario"] == "clean"
        }
        for row in matrix.rows:
            expected = 100.0 * (row["mape"] - clean[(row["site"], row["predictor"])])
            assert row["dMAPE vs clean (pp)"] == pytest.approx(expected, abs=5e-3)

    def test_tuned_never_worse_than_fixed_params(self, matrix):
        fixed = {
            (r["scenario"], r["site"]): r["mape"]
            for r in matrix.rows
            if r["predictor"] == "wcma"
        }
        for row in matrix.rows:
            if row["predictor"] == TUNED_WCMA_LABEL:
                key = (row["scenario"], row["site"])
                assert row["mape"] <= fixed[key] + 1e-12
                assert row["tuned params"].startswith("a=")

    def test_regime_shift_degrades_prediction(self, matrix):
        """The headline qualitative result: a weather-regime shift must
        hurt WCMA markedly more than clock jitter does."""
        by_scenario = {}
        for row in matrix.rows:
            if row["predictor"] == "wcma":
                by_scenario.setdefault(row["scenario"], []).append(
                    row["dMAPE vs clean (pp)"]
                )
        regime = np.mean(by_scenario["regime-shift"])
        jitter = np.mean(by_scenario["jitter"])
        assert regime > 1.0
        assert regime > jitter

    def test_same_seed_reproduces(self):
        a = run(n_days=30, sites=("PFCI",), scenarios=("dropout",), seed=3,
                tune_wcma=False)
        b = run(n_days=30, sites=("PFCI",), scenarios=("dropout",), seed=3,
                tune_wcma=False)
        assert a.rows == b.rows
        assert a.render() == b.render()

    def test_seed_changes_stochastic_rows(self):
        kwargs = dict(
            n_days=30, sites=("PFCI",), scenarios=("dropout",), tune_wcma=False
        )
        a = run(seed=3, **kwargs)
        b = run(seed=4, **kwargs)
        mape = lambda res: [
            r["mape"] for r in res.rows if r["scenario"] == "dropout"
        ]
        assert mape(a) != mape(b)

    def test_jobs_identical_to_sequential(self):
        kwargs = dict(
            n_days=30,
            sites=("PFCI", "SPMD"),
            scenarios=("dropout", "shading"),
            seed=11,
            tune_wcma=False,
        )
        sequential = run(jobs=None, **kwargs)
        parallel = run(jobs=3, **kwargs)
        assert sequential.rows == parallel.rows
        assert sequential.render() == parallel.render()

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            run(n_days=30, jobs=0)
        with pytest.raises(ValueError, match="n_days"):
            run(n_days=0)
        with pytest.raises(ValueError, match="unknown predictors"):
            run(n_days=30, predictors=("nope",))
        with pytest.raises(ValueError, match="unknown scenarios"):
            run(n_days=30, scenarios=("nope",))


class TestFullMatrixAcceptance:
    """The PR's acceptance shape: >= 8 scenarios x all 6 sites,
    deterministic, and sequential == parallel."""

    def test_full_matrix_deterministic_across_jobs(self):
        kwargs = dict(n_days=45, seed=1, tune_wcma=False)
        sequential = run(jobs=None, **kwargs)
        parallel = run(jobs=2, **kwargs)
        assert len(sequential.meta["scenarios"]) >= 8
        assert len(sequential.meta["sites"]) == 6
        assert sequential.rows == parallel.rows
        assert sequential.render() == parallel.render()
        again = run(jobs=None, **kwargs)
        assert again.render() == sequential.render()


class TestRobustnessSummary:
    def test_summary_and_formatting(self, matrix):
        summary = summarise_robustness(matrix.rows, predictor="wcma")
        assert summary.n_sites == len(SITES)
        assert set(summary.scenario_mape) == {"clean", *SCENARIOS}
        assert summary.scenario_degradation_pp["clean"] == pytest.approx(0.0)
        assert summary.worst_scenario in SCENARIOS
        text = format_robustness_summary(summary)
        assert "most harmful" in text
        assert "clean MAPE" in text

    def test_summary_matches_row_means(self, matrix):
        summary = summarise_robustness(matrix.rows, predictor="ewma")
        rows = [
            r["mape"]
            for r in matrix.rows
            if r["predictor"] == "ewma" and r["scenario"] == "dropout"
        ]
        assert summary.scenario_mape["dropout"] == pytest.approx(np.mean(rows))

    def test_summary_requires_predictor_rows(self, matrix):
        with pytest.raises(ValueError, match="no rows"):
            summarise_robustness(matrix.rows, predictor="nope")

    def test_summary_requires_clean_baseline(self):
        rows = [
            {"scenario": "dropout", "site": "PFCI", "predictor": "wcma",
             "mape": 0.1}
        ]
        with pytest.raises(ValueError, match="clean"):
            summarise_robustness(rows, predictor="wcma")


class TestFleetSpecScenarioAxis:
    """The scenarios axis of the fleet-spec builder."""

    def test_scenarios_cycle_and_label(self):
        from repro.experiments.fleet import build_fleet_specs

        specs = build_fleet_specs(
            n_nodes=4,
            sites=("SPMD",),
            n_days=8,
            predictors=("wcma",),
            scenarios=("clean", "dropout"),
        )
        names = [spec.name for spec in specs]
        assert "spmd-clean-wcma-kansal-0" in names
        assert "spmd-dropout-wcma-kansal-1" in names
        # clean nodes share the undegraded trace object (identity).
        assert specs[0].trace is not specs[1].trace
        assert specs[0].trace is specs[2].trace

    def test_default_keeps_legacy_names_and_traces(self):
        from repro.experiments.fleet import build_fleet_specs
        from repro.solar.datasets import build_dataset

        specs = build_fleet_specs(
            n_nodes=2, sites=("SPMD",), n_days=8, predictors=("wcma",)
        )
        assert specs[0].name == "spmd-wcma-kansal-0"
        assert specs[0].trace is build_dataset("SPMD", n_days=8)

    def test_unknown_scenario_raises(self):
        from repro.experiments.fleet import build_fleet_specs

        with pytest.raises(KeyError, match="unknown scenario"):
            build_fleet_specs(
                n_nodes=2, sites=("SPMD",), n_days=8, scenarios=("nope",)
            )


class TestFleetRobustness:
    @pytest.fixture(scope="class")
    def fleet_result(self):
        return run_fleet_robustness(
            n_days=10, sites=SITES, scenarios=("dropout", "harsh-field"), seed=5
        )

    def test_one_node_per_cell(self, fleet_result):
        assert len(fleet_result.rows) == len(SITES) * 3  # clean + 2
        assert fleet_result.meta["n_nodes"] == len(SITES) * 3

    def test_rows_carry_fleet_metrics(self, fleet_result):
        for row in fleet_result.rows:
            assert 0.0 <= row["mean_duty"] <= 1.0
            assert 0.0 <= row["downtime"] <= 1.0
        clean_rows = [r for r in fleet_result.rows if r["scenario"] == "clean"]
        assert all(r["ddowntime (pp)"] == 0.0 for r in clean_rows)

    def test_deterministic(self):
        kwargs = dict(n_days=8, sites=("PFCI",), scenarios=("dropout",), seed=2)
        a = run_fleet_robustness(**kwargs)
        b = run_fleet_robustness(**kwargs)
        assert a.rows == b.rows

    def test_validation(self):
        with pytest.raises(ValueError, match="n_days"):
            run_fleet_robustness(n_days=0)


class TestMatrixCacheResume:
    """The matrix through the result cache: resume semantics."""

    def _cache(self, tmp_path):
        from repro.parallel.cache import ResultCache

        return ResultCache(tmp_path / "cache", salt="test")

    def test_rerun_hits_every_cell_and_matches(self, tmp_path):
        cache = self._cache(tmp_path)
        kwargs = dict(
            n_days=DAYS, sites=SITES, scenarios=("dropout",), seed=7,
            tune_wcma=False,
        )
        stats = []
        first = run(cache=cache, stats=stats, **kwargs)
        assert stats[0].cache_misses == 4  # 2 sites x (clean + dropout)
        second = run(cache=cache, stats=stats, **kwargs)
        assert stats[1].cache_hits == 4 and stats[1].cache_misses == 0
        assert first.rows == second.rows
        assert first.render() == second.render()

    def test_interrupted_matrix_resumes_partial_cells(self, tmp_path):
        """A narrower earlier run seeds the cache; the full matrix
        re-computes only the missing cells and the degradation column
        is still filled across the merged whole."""
        cache = self._cache(tmp_path)
        common = dict(n_days=DAYS, sites=SITES, seed=7, tune_wcma=False)
        run(scenarios=("dropout",), cache=cache, **common)
        stats = []
        full = run(
            scenarios=("dropout", "jitter"), cache=cache, stats=stats, **common
        )
        # clean + dropout cells (2 sites x 2) hit; jitter cells miss.
        assert stats[0].cache_hits == 4 and stats[0].cache_misses == 2
        fresh = run(scenarios=("dropout", "jitter"), **common)
        assert full.rows == fresh.rows
        assert all(
            row["dMAPE vs clean (pp)"] is not None for row in full.rows
        )

    def test_cached_rows_predate_degradation_fill(self, tmp_path):
        """Cached cell rows must carry no baked-in dMAPE: the column is
        computed after the merge, whatever subset the cells came from."""
        cache = self._cache(tmp_path)
        kwargs = dict(
            n_days=DAYS, sites=("PFCI",), scenarios=("dropout",), seed=7,
            tune_wcma=False,
        )
        run(cache=cache, **kwargs)

        entries = 0
        for sub in sorted((tmp_path / "cache").iterdir()):
            if sub.is_dir():
                for path in sub.glob("*.pkl"):
                    import pickle

                    rows = pickle.loads(path.read_bytes())
                    entries += 1
                    assert all(r["dMAPE vs clean (pp)"] is None for r in rows)
        assert entries == 2

    def test_seed_and_tune_are_in_the_key(self, tmp_path):
        cache = self._cache(tmp_path)
        kwargs = dict(n_days=DAYS, sites=("PFCI",), scenarios=("dropout",))
        run(seed=7, tune_wcma=False, cache=cache, **kwargs)
        stats = []
        run(seed=8, tune_wcma=False, cache=cache, stats=stats, **kwargs)
        assert stats[0].cache_hits == 0

    def test_thread_backend_matches_sequential(self):
        kwargs = dict(
            n_days=DAYS, sites=SITES, scenarios=("dropout",), seed=7,
            tune_wcma=False,
        )
        assert run(**kwargs).rows == run(jobs=2, backend="thread", **kwargs).rows
