"""Tests for the learned-tier train/serve experiment (experiments.learn)."""

import pytest

from repro.experiments.learn import DEFAULT_LEARN_SITES, DEFAULT_TRAIN_DAYS, run
from repro.learn.artifact import ArtifactStore

# Smallest useful split: default min_train_days=8 warm-up plus the two
# trainable days fit_artifact insists on -> 10 training days minimum.
KWARGS = dict(n_days=14, sites=("PFCI",), train_days=10, n_slots=24, seed=3)


@pytest.fixture(scope="module")
def result():
    return run(**KWARGS)


class TestRun:
    def test_one_row_per_site_model(self, result):
        assert [(r["site"], r["model"]) for r in result.rows] == [
            ("PFCI", "ridge"),
            ("PFCI", "gbm"),
        ]

    def test_columns_present_and_sane(self, result):
        for row in result.rows:
            for col in ("train_mape", "frozen_mape", "online_mape",
                        "wcma_mape", "ewma_mape"):
                assert row[col] >= 0.0
            assert len(row["digest"]) == 16

    def test_deterministic(self, result):
        again = run(**KWARGS)
        assert again.rows == result.rows

    def test_render_mentions_holdout(self, result):
        text = result.render()
        assert "10" in text and "ridge" in text and "gbm" in text

    def test_meta_records_split(self, result):
        assert result.meta["train_days"] == 10
        assert result.meta["n_days"] == 14
        assert result.meta["models"] == ("ridge", "gbm")


class TestValidation:
    @pytest.mark.parametrize("train_days", [0, 14, 20])
    def test_bad_split_rejected(self, train_days):
        with pytest.raises(ValueError, match="train_days"):
            run(n_days=14, sites=("PFCI",), train_days=train_days, n_slots=24)

    def test_default_sites(self):
        assert DEFAULT_LEARN_SITES == ("PFCI", "HSU")
        assert 0 < DEFAULT_TRAIN_DAYS < 45


class TestStoreSideEffect:
    def test_artifacts_persisted(self, tmp_path):
        res = run(store_dir=tmp_path, **KWARGS)
        store = ArtifactStore(tmp_path)
        assert sorted(store.entries()) == [("PFCI", "gbm"), ("PFCI", "ridge")]
        for row in res.rows:
            loaded = store.load(row["site"], row["model"])
            assert loaded is not None and loaded.digest() == row["digest"]
