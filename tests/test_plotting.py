"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.plotting import line_chart, multi_series_chart, render_fig2, render_fig7


class TestLineChart:
    def test_shape_of_output(self):
        chart = line_chart(np.sin(np.linspace(0, 6, 300)) + 1.0, width=40, height=8)
        lines = chart.splitlines()
        assert len(lines) == 9  # 8 rows + axis
        assert all(len(line) <= 50 for line in lines)

    def test_peak_column_reaches_top(self):
        values = np.zeros(40)
        values[20] = 10.0
        chart = line_chart(values, width=40, height=6)
        assert "#" in chart.splitlines()[0]

    def test_zero_series_does_not_crash(self):
        chart = line_chart(np.zeros(50), width=20, height=4)
        assert "#" not in chart

    def test_labels_included(self):
        chart = line_chart([1, 2, 3], width=10, height=3, y_label="Y", x_label="X")
        assert chart.splitlines()[0] == "Y"
        assert "X" in chart.splitlines()[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([])
        with pytest.raises(ValueError):
            line_chart([1.0], width=4)
        with pytest.raises(ValueError):
            line_chart(np.zeros((2, 2)))


class TestMultiSeriesChart:
    def test_markers_and_legend(self):
        chart = multi_series_chart(
            {"alpha": [1, 2, 3], "beta": [3, 2, 1]}, width=20, height=5
        )
        assert "A=alpha" in chart
        assert "B=beta" in chart
        assert "A" in chart and "B" in chart

    def test_axis_bounds_displayed(self):
        chart = multi_series_chart(
            {"s": [0.1, 0.4]}, x_values=[2, 20], width=20, height=4
        )
        assert "0.400" in chart
        assert "0.100" in chart
        assert "20" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_series_chart({})
        with pytest.raises(ValueError):
            multi_series_chart({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            multi_series_chart({"a": []})
        with pytest.raises(ValueError):
            multi_series_chart({"a": [1, 2]}, x_values=[1])
        with pytest.raises(ValueError):
            multi_series_chart({"a": [1, 2]}, width=2)

    def test_constant_series_does_not_crash(self):
        chart = multi_series_chart({"flat": [5.0, 5.0, 5.0]}, width=12, height=4)
        assert "F" in chart


class TestFigureRenderers:
    def test_render_fig2(self):
        chart = render_fig2(n_days=30, site="HSU")
        assert "W/m^2" in chart
        assert "#" in chart  # daylight reaches the top rows somewhere

    def test_render_fig7(self):
        chart = render_fig7(n_days=30, sites=("PFCI", "ORNL"))
        assert "MAPE" in chart
        assert "P=PFCI" in chart or "P" in chart
        assert "D (days of history)" in chart


class TestCliPlot:
    def test_plot_fig7(self, capsys):
        from repro.cli import main

        assert main(["plot", "fig7", "--days", "30", "--sites", "PFCI"]) == 0
        out = capsys.readouterr().out
        assert "MAPE" in out

    def test_plot_fig2(self, capsys):
        from repro.cli import main

        assert main(["plot", "fig2", "--days", "30", "--site", "HSU"]) == 0
        out = capsys.readouterr().out
        assert "W/m^2" in out
