"""Tests for the sharded fleet engine (block partitioning + resume)."""

import numpy as np
import pytest

from repro.experiments.fleet import build_fleet_specs
from repro.management.fleet import FleetAggregate, FleetSimulator
from repro.parallel.cache import ResultCache
from repro.parallel.fleet import (
    DEFAULT_BLOCK_SIZE,
    FleetPlan,
    plan_blocks,
    run_fleet_blocks,
)

#: Heterogeneous little fleet: every axis engaged, axes of co-prime
#: lengths so the mixed-radix enumeration is exercised across blocks.
PLAN = FleetPlan(
    n_nodes=13,
    sites=("SPMD", "PFCI"),
    n_days=3,
    predictors=("wcma", "ewma", "persistence"),
    controllers=("kansal", "fixed"),
    capacities=(50.0, 9000.0),
    scenarios=("clean", "dropout"),
)


def _full_aggregate(plan: FleetPlan) -> FleetAggregate:
    specs = build_fleet_specs(**plan.spec_kwargs())
    return FleetSimulator(specs, plan.n_slots).run_aggregate()


def _assert_bitwise_equal(a: FleetAggregate, b: FleetAggregate) -> None:
    assert a.node_names == b.node_names
    assert np.array_equal(a.shortfall_slots, b.shortfall_slots)
    for name in FleetAggregate._FLOAT_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype
        assert np.array_equal(left, right), name


class TestPlanBlocks:
    def test_cover_exactly(self):
        assert plan_blocks(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert plan_blocks(4, 4) == [(0, 4)]
        assert plan_blocks(3, 100) == [(0, 3)]

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            plan_blocks(10, 0)

    def test_default_block_size_sane(self):
        assert DEFAULT_BLOCK_SIZE >= 256


class TestFleetPlan:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="n_nodes"):
            FleetPlan(n_nodes=0)

    def test_spec_kwargs_rebuild_the_same_fleet(self):
        specs = build_fleet_specs(**PLAN.spec_kwargs())
        assert len(specs) == PLAN.n_nodes
        blocks = [
            build_fleet_specs(node_range=(start, stop), **PLAN.spec_kwargs())
            for start, stop in plan_blocks(PLAN.n_nodes, 5)
        ]
        flat = [spec for block in blocks for spec in block]
        assert [s.name for s in flat] == [s.name for s in specs]


class TestShardedEqualsFull:
    def test_blocks_concat_bitwise_equal_to_full(self):
        full = _full_aggregate(PLAN)
        sharded, stats = run_fleet_blocks(PLAN, block_size=4)
        assert stats.n_units == 4
        _assert_bitwise_equal(sharded, full)

    def test_block_size_invariance(self):
        a, _ = run_fleet_blocks(PLAN, block_size=3)
        b, _ = run_fleet_blocks(PLAN, block_size=7)
        c, _ = run_fleet_blocks(PLAN, block_size=PLAN.n_nodes)
        _assert_bitwise_equal(a, b)
        _assert_bitwise_equal(a, c)

    def test_thread_parallel_bitwise_equal(self):
        seq, _ = run_fleet_blocks(PLAN, block_size=4)
        par, stats = run_fleet_blocks(PLAN, block_size=4, jobs=2, backend="thread")
        assert stats.backend == "thread"
        _assert_bitwise_equal(seq, par)

    def test_summary_matches_run(self):
        specs = build_fleet_specs(**PLAN.spec_kwargs())
        record = FleetSimulator(specs, PLAN.n_slots).run().summary()
        sharded, _ = run_fleet_blocks(PLAN, block_size=4)
        aggregate = sharded.summary()
        assert aggregate["n_nodes"] == record["n_nodes"]
        assert aggregate["total_slots"] == record["total_slots"]
        assert aggregate["downtime_fraction"] == pytest.approx(
            record["downtime_fraction"], abs=1e-12
        )
        assert aggregate["mean_duty"] == pytest.approx(
            record["mean_duty"], rel=1e-12
        )
        assert aggregate["waste_fraction"] == pytest.approx(
            record["waste_fraction"], rel=1e-9
        )


class TestFloat32:
    def test_float32_halves_width(self):
        agg, _ = run_fleet_blocks(PLAN, block_size=4, dtype="float32")
        assert agg.mean_duty.dtype == np.float32
        full = _full_aggregate(PLAN)
        assert np.allclose(agg.mean_duty, full.mean_duty, rtol=1e-6)

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            run_fleet_blocks(PLAN, dtype="float16")


class TestCheckpointResume:
    def test_rerun_hits_every_block(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        first, stats1 = run_fleet_blocks(PLAN, block_size=4, cache=cache)
        assert stats1.cache_misses == 4 and stats1.cache_hits == 0
        second, stats2 = run_fleet_blocks(PLAN, block_size=4, cache=cache)
        assert stats2.cache_hits == 4 and stats2.cache_misses == 0
        _assert_bitwise_equal(first, second)

    def test_interrupted_year_resumes_from_blocks(self, tmp_path):
        """Pre-populate all but one block, as an interrupted run would."""
        cache = ResultCache(tmp_path / "c", salt="s")
        run_fleet_blocks(
            FleetPlan(**{**PLAN.__dict__, "n_nodes": 8}), block_size=4,
            cache=cache,
        )
        # Growing the fleet re-uses nothing (the plan is in the key) but
        # an identical re-run of the 8-node plan is all hits.
        _, stats = run_fleet_blocks(
            FleetPlan(**{**PLAN.__dict__, "n_nodes": 8}), block_size=4,
            cache=cache,
        )
        assert stats.cache_hits == 2 and stats.cache_misses == 0

    def test_block_geometry_is_in_the_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        run_fleet_blocks(PLAN, block_size=4, cache=cache)
        _, stats = run_fleet_blocks(PLAN, block_size=7, cache=cache)
        assert stats.cache_hits == 0

    def test_dtype_is_in_the_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        run_fleet_blocks(PLAN, block_size=4, cache=cache)
        _, stats = run_fleet_blocks(PLAN, block_size=4, dtype="float32", cache=cache)
        assert stats.cache_hits == 0
