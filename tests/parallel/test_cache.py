"""Tests for the content-addressed result cache.

The load-bearing properties are key *stability* (same spec digests the
same everywhere: across processes, hash seeds, and measured-site
re-registration against the same file) and key *sensitivity* (any
change to the spec, the dataset identity, or the code salt must miss).
"""

import dataclasses
import pickle
import subprocess
import sys

import pytest

from repro.parallel.cache import (
    MISS,
    ResultCache,
    cache_key,
    canonical_payload,
    dataset_identity,
    default_cache_dir,
    default_salt,
    file_fingerprint,
)
from repro.solar.ingest import sample_csv_path
from repro.solar.ingest.sites import (
    clear_measured_sites,
    register_measured_site,
)


@pytest.fixture
def registry_guard():
    yield
    clear_measured_sites()


PAYLOAD = {
    "kind": "robustness-cell",
    "site": "PFCI",
    "scenario": "dropout",
    "n_days": 45,
    "predictors": ("wcma", "ewma"),
    "tune_wcma": True,
    "token": None,
}


class TestCanonicalPayload:
    def test_primitives_pass_through(self):
        assert canonical_payload(None) is None
        assert canonical_payload(3) == 3
        assert canonical_payload(0.25) == 0.25
        assert canonical_payload("x") == "x"
        assert canonical_payload(True) is True

    def test_tuples_and_lists_identical(self):
        assert canonical_payload((1, 2)) == canonical_payload([1, 2])

    def test_dataclasses_tagged(self):
        @dataclasses.dataclass(frozen=True)
        class Spec:
            name: str
            n: int

        out = canonical_payload(Spec("a", 2))
        assert out == {"__spec__": "Spec", "name": "a", "n": 2}

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="canonicalise"):
            canonical_payload(object())


class TestKeyStability:
    def test_same_payload_same_key(self):
        assert cache_key(PAYLOAD, salt="s") == cache_key(dict(PAYLOAD), salt="s")

    def test_key_stable_across_processes(self):
        """The digest must not depend on the Python hash seed."""
        code = (
            "from repro.parallel.cache import cache_key;"
            "print(cache_key({'site': 'PFCI', 'n_days': 45, "
            "'predictors': ('wcma',)}, salt='s'))"
        )
        local = cache_key(
            {"site": "PFCI", "n_days": 45, "predictors": ("wcma",)}, salt="s"
        )
        for seed in ("0", "1", "random"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                cwd="/root/repo",
            )
            assert out.stdout.strip() == local

    def test_salt_changes_key(self):
        assert cache_key(PAYLOAD, salt="a") != cache_key(PAYLOAD, salt="b")
        assert default_salt() in cache_key(PAYLOAD) or True  # salt is hashed in
        assert cache_key(PAYLOAD) == cache_key(PAYLOAD, salt=default_salt())

    def test_payload_changes_key(self):
        other = dict(PAYLOAD, n_days=46)
        assert cache_key(PAYLOAD, salt="s") != cache_key(other, salt="s")


class TestDatasetIdentity:
    def test_synthetic_sites_are_none(self):
        assert dataset_identity("PFCI") is None

    def test_reregistration_same_file_same_identity(self, registry_guard):
        register_measured_site(sample_csv_path(), name="MEAS")
        first = dataset_identity("MEAS")
        clear_measured_sites()
        register_measured_site(sample_csv_path(), name="MEAS")
        assert dataset_identity("MEAS") == first
        assert first["file"]["sha256"]

    def test_different_file_different_identity(self, registry_guard, tmp_path):
        register_measured_site(sample_csv_path(), name="MEAS")
        first = dataset_identity("MEAS")
        copy = tmp_path / "copy.csv"
        copy.write_bytes(sample_csv_path().read_bytes())
        clear_measured_sites()
        register_measured_site(copy, name="MEAS")
        second = dataset_identity("MEAS")
        # Same content hash, but the registered spec (path) differs.
        assert second["file"]["sha256"] == first["file"]["sha256"]
        assert second != first

    def test_edited_file_changes_identity(self, registry_guard, tmp_path):
        copy = tmp_path / "edit.csv"
        copy.write_bytes(sample_csv_path().read_bytes())
        register_measured_site(copy, name="MEAS")
        first = dataset_identity("MEAS")
        data = copy.read_bytes()
        copy.write_bytes(data.replace(b"100", b"101", 1))
        assert dataset_identity("MEAS") != first

    def test_file_fingerprint_matches_content(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abc")
        fp = file_fingerprint(path)
        assert fp["size"] == 3
        path.write_bytes(b"abd")
        assert file_fingerprint(path) != fp


class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        key = cache.key(PAYLOAD)
        assert cache.get(key) is MISS
        cache.put(key, {"rows": [1.5, None, "x"]})
        assert cache.get(key) == {"rows": [1.5, None, "x"]}
        assert cache.counters() == (1, 1)

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        cache.put("ab" + "0" * 62, None)
        assert cache.get("ab" + "0" * 62) is None

    def test_cross_instance_and_salt_miss(self, tmp_path):
        a = ResultCache(tmp_path / "c", salt="v1")
        a.put(a.key(PAYLOAD), "result")
        b = ResultCache(tmp_path / "c", salt="v1")
        assert b.get(b.key(PAYLOAD)) == "result"
        bumped = ResultCache(tmp_path / "c", salt="v2")
        assert bumped.get(bumped.key(PAYLOAD)) is MISS

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        key = cache.key(PAYLOAD)
        cache.put(key, "good")
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is MISS
        assert not path.exists()

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        key = cache.key(PAYLOAD)
        cache.put(key, list(range(100)))
        path = cache._path(key)
        path.write_bytes(pickle.dumps(list(range(100)))[:10])
        assert cache.get(key) is MISS

    def test_info_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        cache.put(cache.key(PAYLOAD), "x")
        cache.put(cache.key(dict(PAYLOAD, n_days=1)), "y")
        info = cache.info()
        assert info["entries"] == 2 and info["bytes"] > 0
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0

    def test_info_missing_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            ResultCache(tmp_path / "nope").info()
        with pytest.raises(ValueError, match="does not exist"):
            ResultCache(tmp_path / "nope").clear()

    def test_clear_refuses_foreign_directory(self, tmp_path):
        (tmp_path / "precious.txt").write_text("data")
        with pytest.raises(ValueError, match="refusing"):
            ResultCache(tmp_path).clear()
        assert (tmp_path / "precious.txt").exists()

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SOLAR_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"
        monkeypatch.delenv("REPRO_SOLAR_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-solar"


class TestConcurrentDeleteTolerance:
    """Two resuming runs sharing a cache race on unlink; neither may crash."""

    def make_cache(self, tmp_path, entries=3):
        cache = ResultCache(tmp_path / "c", salt="s")
        keys = [cache.key(dict(PAYLOAD, n_days=n)) for n in range(entries)]
        for i, key in enumerate(keys):
            cache.put(key, f"value-{i}")
        return cache, keys

    def test_clear_racing_clear(self, tmp_path, monkeypatch):
        """A concurrent clear deleting files mid-sweep is not an error."""
        cache, keys = self.make_cache(tmp_path)
        rival = ResultCache(tmp_path / "c", salt="s")
        entries = list(cache._entries())
        monkeypatch.setattr(cache, "_entries", lambda: iter(entries))
        rival.clear()  # the rival wins every unlink
        assert cache.clear() == 0  # no crash; nothing left for us
        assert cache.info()["entries"] == 0

    def test_corrupt_get_racing_unlink(self, tmp_path, monkeypatch):
        """Both readers conclude 'corrupt'; only one unlink can win."""
        cache, keys = self.make_cache(tmp_path, entries=1)
        path = cache._path(keys[0])
        path.write_bytes(b"not a pickle")

        original_open = open

        def open_then_vanish(*args, **kwargs):
            handle = original_open(*args, **kwargs)
            path.unlink()  # the rival removes it between read and unlink
            return handle

        monkeypatch.setattr("builtins.open", open_then_vanish)
        assert cache.get(keys[0]) is MISS  # no FileNotFoundError escape
        monkeypatch.undo()
        assert not path.exists()

    def test_info_racing_unlink(self, tmp_path, monkeypatch):
        """Entries unlinked between listing and stat are skipped."""
        cache, keys = self.make_cache(tmp_path)
        entries = list(cache._entries())
        cache._path(keys[1]).unlink()  # vanishes after the listing
        monkeypatch.setattr(cache, "_entries", lambda: iter(entries))
        info = cache.info()
        assert info["entries"] == 2

    def test_threaded_clear_storm(self, tmp_path):
        """Many threads clearing one cache: no exceptions, full removal."""
        import threading

        cache, keys = self.make_cache(tmp_path, entries=20)
        caches = [ResultCache(tmp_path / "c", salt="s") for _ in range(6)]
        removed = []
        errors = []
        barrier = threading.Barrier(len(caches), timeout=10)

        def worker(c):
            try:
                barrier.wait()
                removed.append(c.clear())
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(c,)) for c in caches]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert sum(removed) == 20  # every entry removed exactly once
        assert cache.info()["entries"] == 0
