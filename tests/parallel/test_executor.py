"""Tests for the shared work-unit executor."""

import pytest

import repro.parallel.executor as executor_mod
from repro.parallel.cache import ResultCache
from repro.parallel.executor import (
    BACKENDS,
    ExecutionStats,
    _auto_chunk_size,
    execute_units,
    run_units,
)


def _square(x):
    return x * x


def _pair(a, b):
    return (a, b)


UNITS = [(i,) for i in range(10)]
EXPECTED = [i * i for i in range(10)]


def _forbid_pools(monkeypatch):
    """Make any pool construction fail loudly."""

    def _boom(*args, **kwargs):
        raise AssertionError("a pool was spawned")

    monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _boom)
    monkeypatch.setattr(executor_mod, "ThreadPoolExecutor", _boom)


class TestInlinePath:
    def test_jobs_none_never_spawns_a_pool(self, monkeypatch):
        _forbid_pools(monkeypatch)
        results, stats = execute_units(_square, UNITS)
        assert results == EXPECTED
        assert stats.backend == "inline" and stats.jobs == 1

    def test_jobs_one_never_spawns_a_pool(self, monkeypatch):
        _forbid_pools(monkeypatch)
        results, stats = execute_units(_square, UNITS, jobs=1, backend="process")
        assert results == EXPECTED
        assert stats.backend == "inline"

    def test_single_unit_never_spawns_a_pool(self, monkeypatch):
        _forbid_pools(monkeypatch)
        results, stats = execute_units(_square, [(7,)], jobs=8, backend="process")
        assert results == [49]
        assert stats.backend == "inline"

    def test_inline_backend_forces_inline_at_any_jobs(self, monkeypatch):
        _forbid_pools(monkeypatch)
        results, _ = execute_units(_square, UNITS, jobs=8, backend="inline")
        assert results == EXPECTED

    def test_multi_argument_units(self):
        results, _ = execute_units(_pair, [(1, 2), (3, 4)])
        assert results == [(1, 2), (3, 4)]


class TestPoolBackends:
    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_matches_inline_in_order(self, backend):
        results, stats = execute_units(_square, UNITS, jobs=2, backend=backend)
        assert results == EXPECTED
        assert stats.backend == backend
        assert stats.jobs == 2
        assert stats.n_chunks >= 2

    def test_explicit_chunk_size(self):
        results, stats = execute_units(
            _square, UNITS, jobs=2, backend="thread", chunk_size=3
        )
        assert results == EXPECTED
        assert stats.chunk_size == 3
        assert stats.n_chunks == 4  # 10 units in chunks of 3

    def test_jobs_clamped_to_pending(self):
        _, stats = execute_units(_square, UNITS[:2], jobs=16, backend="thread")
        assert stats.jobs == 2

    def test_initializer_runs_in_workers(self, tmp_path):
        marker = tmp_path / "warm"
        results, _ = execute_units(
            _square,
            UNITS,
            jobs=2,
            backend="thread",
            initializer=lambda p: open(p, "a").close(),
            initargs=(str(marker),),
        )
        assert results == EXPECTED
        assert marker.exists()


class TestValidation:
    def test_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            execute_units(_square, UNITS, backend="mpi")
        assert set(BACKENDS) == {"process", "thread", "inline"}

    def test_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            execute_units(_square, UNITS, jobs=0)

    def test_keys_length_mismatch(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s")
        with pytest.raises(ValueError, match="cache keys"):
            execute_units(_square, UNITS, cache=cache, keys=["k"])

    def test_auto_chunk_size(self):
        assert _auto_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert _auto_chunk_size(1, 8) == 1
        assert _auto_chunk_size(0, 8) == 1


class TestCacheIntegration:
    def test_hits_skip_execution(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "c", salt="s")
        keys = [cache.key({"unit": i}) for i, in UNITS]
        first, stats1 = execute_units(_square, UNITS, cache=cache, keys=keys)
        assert first == EXPECTED
        assert stats1.cache_misses == len(UNITS) and stats1.cache_hits == 0
        # Second run: everything served from cache, fn never called,
        # and no pool is spawned even with jobs > 1.
        _forbid_pools(monkeypatch)

        def _fail(x):
            raise AssertionError("unit re-executed despite cache hit")

        second, stats2 = execute_units(
            _fail, UNITS, jobs=4, backend="process", cache=cache, keys=keys
        )
        assert second == EXPECTED
        assert stats2.cache_hits == len(UNITS) and stats2.cache_misses == 0

    def test_partial_resume_runs_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        keys = [cache.key({"unit": i}) for i, in UNITS]
        for key, (i,) in list(zip(keys, UNITS))[:7]:
            cache.put(key, i * i)
        executed = []

        def _traced(x):
            executed.append(x)
            return x * x

        results, stats = execute_units(_traced, UNITS, cache=cache, keys=keys)
        assert results == EXPECTED
        assert executed == [7, 8, 9]
        assert stats.cache_hits == 7 and stats.cache_misses == 3

    def test_none_keys_are_uncacheable(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        keys = [cache.key({"unit": 0}), None]
        results, stats = execute_units(_square, [(2,), (3,)], cache=cache, keys=keys)
        assert results == [4, 9]
        assert cache.info()["entries"] == 1

    def test_thread_pool_writes_back(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        keys = [cache.key({"unit": i}) for i, in UNITS]
        execute_units(_square, UNITS, jobs=2, backend="thread", cache=cache, keys=keys)
        assert cache.info()["entries"] == len(UNITS)
        _, stats = execute_units(
            _square, UNITS, jobs=2, backend="thread", cache=cache, keys=keys
        )
        assert stats.cache_hits == len(UNITS)


class TestStats:
    def test_as_dict_round_trips(self):
        stats = ExecutionStats(
            backend="process", jobs=4, n_units=20, cache_hits=5,
            cache_misses=15, chunk_size=2, n_chunks=8,
            dispatch_s=0.03, elapsed_s=1.5,
        )
        payload = stats.as_dict()
        assert payload["backend"] == "process"
        assert payload["dispatch_per_unit_s"] == pytest.approx(0.002)

    def test_dispatch_per_unit_zero_when_all_hit(self):
        stats = ExecutionStats(
            backend="inline", jobs=1, n_units=5, cache_hits=5,
            cache_misses=0, chunk_size=1, n_chunks=0,
            dispatch_s=0.0, elapsed_s=0.01,
        )
        assert stats.dispatch_per_unit_s == 0.0

    def test_run_units_drops_stats(self):
        assert run_units(_square, UNITS) == EXPECTED
