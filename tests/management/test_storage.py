"""Tests for battery and supercapacitor models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.management.storage import Battery, Supercapacitor


class TestBattery:
    def test_initial_state(self):
        battery = Battery(capacity_joules=100.0, initial_soc=0.25)
        assert battery.stored_joules == 25.0
        assert battery.state_of_charge == 0.25
        assert not battery.is_depleted

    def test_charge_applies_efficiency(self):
        battery = Battery(100.0, charge_efficiency=0.8, initial_soc=0.0)
        stored = battery.charge(10.0)
        assert stored == pytest.approx(8.0)
        assert battery.stored_joules == pytest.approx(8.0)

    def test_charge_overflow_wasted(self):
        battery = Battery(100.0, charge_efficiency=1.0, initial_soc=0.95)
        stored = battery.charge(50.0)
        assert stored == pytest.approx(5.0)
        assert battery.state_of_charge == 1.0

    def test_discharge_applies_efficiency(self):
        battery = Battery(100.0, discharge_efficiency=0.5, initial_soc=1.0)
        supplied = battery.discharge(10.0)
        assert supplied == 10.0
        assert battery.stored_joules == pytest.approx(80.0)  # drew 20 J

    def test_discharge_partial_when_empty(self):
        battery = Battery(100.0, discharge_efficiency=1.0, initial_soc=0.05)
        supplied = battery.discharge(50.0)
        assert supplied == pytest.approx(5.0)
        assert battery.is_depleted

    def test_leak(self):
        battery = Battery(100.0, leakage_watts=1.0, initial_soc=0.5)
        lost = battery.leak(10.0)
        assert lost == pytest.approx(10.0)
        assert battery.stored_joules == pytest.approx(40.0)

    def test_leak_capped_at_stored(self):
        battery = Battery(100.0, leakage_watts=1.0, initial_soc=0.01)
        lost = battery.leak(1e6)
        assert lost == pytest.approx(1.0)
        assert battery.is_depleted

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=0.0)
        with pytest.raises(ValueError):
            Battery(100.0, charge_efficiency=0.0)
        with pytest.raises(ValueError):
            Battery(100.0, initial_soc=1.5)
        with pytest.raises(ValueError):
            Battery(100.0, leakage_watts=-1.0)
        battery = Battery(100.0)
        with pytest.raises(ValueError):
            battery.charge(-1.0)
        with pytest.raises(ValueError):
            battery.discharge(-1.0)
        with pytest.raises(ValueError):
            battery.leak(-1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["charge", "discharge", "leak"]),
                st.floats(0.0, 50.0),
            ),
            max_size=60,
        )
    )
    def test_soc_invariant_under_any_sequence(self, operations):
        """Property: stored energy never leaves [0, capacity]."""
        battery = Battery(100.0, initial_soc=0.5)
        for op, amount in operations:
            getattr(battery, op)(amount)
            assert 0.0 <= battery.stored_joules <= 100.0 + 1e-9
            assert 0.0 <= battery.state_of_charge <= 1.0 + 1e-12


class TestSupercapacitor:
    def test_leakage_scales_with_soc(self):
        full = Supercapacitor(100.0, leakage_watts_full=1.0, initial_soc=1.0)
        half = Supercapacitor(100.0, leakage_watts_full=1.0, initial_soc=0.5)
        assert full.leak(1.0) == pytest.approx(1.0)
        assert half.leak(1.0) == pytest.approx(0.5)

    def test_high_round_trip_efficiency(self):
        cap = Supercapacitor(100.0, initial_soc=0.0)
        cap.charge(10.0)
        assert cap.stored_joules == pytest.approx(9.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            Supercapacitor(100.0, leakage_watts_full=-1.0)
        cap = Supercapacitor(100.0)
        with pytest.raises(ValueError):
            cap.leak(-1.0)
