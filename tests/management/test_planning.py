"""Tests for the profile-based planning controller."""

import pytest

from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import KansalController
from repro.management.harvester import PVHarvester
from repro.management.node import SensorNodeSimulation
from repro.management.planning import ProfilePlanningController
from repro.management.storage import Battery

LOAD = DutyCycledLoad(
    active_power_watts=40e-3, sleep_power_watts=40e-6, min_duty=0.02
)


class TestProfilePlanningController:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProfilePlanningController(LOAD, 0.0, 48)
        with pytest.raises(ValueError):
            ProfilePlanningController(LOAD, 100.0, 0)
        with pytest.raises(ValueError):
            ProfilePlanningController(LOAD, 100.0, 48, profile_days=0)
        with pytest.raises(ValueError):
            ProfilePlanningController(LOAD, 100.0, 48, target_soc=1.5)
        controller = ProfilePlanningController(LOAD, 100.0, 48)
        with pytest.raises(ValueError):
            controller.feedback(-1.0)
        with pytest.raises(ValueError):
            controller.decide(-1.0, 0.5)

    def test_learns_daily_average(self):
        controller = ProfilePlanningController(LOAD, 100.0, n_slots=4)
        # Two days of harvest: (0, 2, 4, 2) W -> average 2 W.
        for _ in range(2):
            for watts in (0.0, 2.0, 4.0, 2.0):
                controller.feedback(watts)
        assert controller.expected_daily_average_watts() == pytest.approx(2.0)

    def test_bootstrap_before_first_full_day(self):
        controller = ProfilePlanningController(LOAD, 100.0, n_slots=4)
        controller.feedback(3.0)
        assert controller.expected_daily_average_watts() == pytest.approx(3.0)

    def test_decision_constant_within_day_after_learning(self):
        controller = ProfilePlanningController(
            LOAD, 100.0, n_slots=4, correction_gain=0.0
        )
        for _ in range(3):
            for watts in (0.0, 0.02, 0.04, 0.02):
                controller.feedback(watts)
        duties = {controller.decide(p, 0.6) for p in (0.0, 0.02, 0.04)}
        assert len(duties) == 1  # ignores the slot-level prediction swing

    def test_soc_correction_direction(self):
        controller = ProfilePlanningController(
            LOAD, 10_000.0, n_slots=4, correction_gain=5.0
        )
        for _ in range(2):
            for watts in (0.0, 0.02, 0.04, 0.02):
                controller.feedback(watts)
        rich = controller.decide(0.02, 0.9)
        poor = controller.decide(0.02, 0.2)
        assert rich > poor

    def test_reset(self):
        controller = ProfilePlanningController(LOAD, 100.0, n_slots=2)
        controller.feedback(1.0)
        controller.reset()
        assert controller.expected_daily_average_watts() == 0.0


class TestPlanningInNodeSimulation:
    def test_planner_smoother_than_kansal(self, hsu_trace):
        def simulate(controller):
            sim = SensorNodeSimulation(
                trace=hsu_trace,
                n_slots=48,
                predictor=WCMAPredictor(48, WCMAParams(0.7, 5, 2)),
                controller=controller,
                harvester=PVHarvester(area_m2=25e-4),
                storage=Battery(capacity_joules=4000.0, initial_soc=0.6),
                load=LOAD,
            )
            return sim.run()

        kansal = simulate(KansalController(LOAD, 4000.0, target_soc=0.6))
        planner = simulate(
            ProfilePlanningController(LOAD, 4000.0, n_slots=48, target_soc=0.6)
        )
        assert planner.duty_std < kansal.duty_std
        # And it remains a functioning node (no catastrophic downtime).
        assert planner.downtime_fraction < 0.2
