"""Tests for the lock-step fleet engine and its building blocks."""

import numpy as np
import pytest

from repro.core.base import FleetDayHistory
from repro.core.registry import make_vector_predictor, supports_vector
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    KansalController,
    MinimumVarianceController,
)
from repro.management.fleet import FleetNodeSpec, FleetSimulator
from repro.management.harvester import PVHarvester
from repro.management.planning import ProfilePlanningController
from repro.management.storage import Battery, Supercapacitor
from repro.solar.datasets import build_dataset

N_SLOTS = 48
LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)


@pytest.fixture(scope="module")
def short_trace():
    return build_dataset("HSU", n_days=8)


def _spec(trace, capacity=250.0, predictor="persistence", **kwargs):
    return FleetNodeSpec(
        trace=trace,
        controller=KansalController(LOAD, capacity, target_soc=0.6),
        predictor=predictor,
        predictor_kwargs=kwargs,
        harvester=PVHarvester(area_m2=25e-4),
        storage=Supercapacitor(capacity_joules=capacity, initial_soc=0.5),
        load=LOAD,
    )


class TestVectorisedModels:
    """Array-parameter paths of the physical models."""

    def test_battery_stack_preserves_state_and_params(self):
        batteries = [
            Battery(capacity_joules=100.0, initial_soc=0.2),
            Battery(capacity_joules=400.0, initial_soc=0.9),
        ]
        batteries[0].charge(10.0)
        stacked = Battery.stack(batteries)
        np.testing.assert_array_equal(
            stacked.stored_joules,
            [batteries[0].stored_joules, batteries[1].stored_joules],
        )
        np.testing.assert_array_equal(stacked.capacity_joules, [100.0, 400.0])

    def test_battery_array_ops_match_scalar(self):
        scalars = [
            Battery(capacity_joules=100.0, initial_soc=0.5),
            Battery(capacity_joules=50.0, initial_soc=0.1),
        ]
        stacked = Battery.stack(scalars)
        charge = np.array([30.0, 80.0])
        discharge = np.array([10.0, 200.0])
        got_charge = stacked.charge(charge)
        got_discharge = stacked.discharge(discharge)
        stacked.leak(3600.0)
        want_charge = [s.charge(float(c)) for s, c in zip(scalars, charge)]
        want_discharge = [s.discharge(float(d)) for s, d in zip(scalars, discharge)]
        for s in scalars:
            s.leak(3600.0)
        np.testing.assert_array_equal(got_charge, want_charge)
        np.testing.assert_array_equal(got_discharge, want_discharge)
        np.testing.assert_array_equal(
            stacked.stored_joules, [s.stored_joules for s in scalars]
        )

    def test_stack_rejects_mixed_classes(self):
        with pytest.raises(TypeError):
            Battery.stack([Battery(), Supercapacitor()])

    def test_load_stack_elementwise(self):
        loads = [
            DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6),
            DutyCycledLoad(active_power_watts=60e-3, sleep_power_watts=30e-6),
        ]
        stacked = DutyCycledLoad.stack(loads)
        duty = np.array([0.3, 0.7])
        np.testing.assert_array_equal(
            stacked.power(duty),
            [ld.power(float(d)) for ld, d in zip(loads, duty)],
        )
        watts = np.array([0.01, 0.02])
        np.testing.assert_array_equal(
            stacked.duty_for_power(watts),
            [ld.duty_for_power(float(w)) for ld, w in zip(loads, watts)],
        )

    def test_controller_stack_elementwise(self):
        controllers = [
            KansalController(LOAD, 100.0, target_soc=0.4),
            KansalController(LOAD, 900.0, target_soc=0.8),
        ]
        stacked = KansalController.stack(controllers)
        watts = np.array([0.005, 0.02])
        soc = np.array([0.3, 0.9])
        np.testing.assert_array_equal(
            stacked.decide(watts, soc),
            [
                c.decide(float(w), float(s))
                for c, w, s in zip(controllers, watts, soc)
            ],
        )

    def test_minvar_stack_keeps_state_per_node(self):
        controllers = [
            MinimumVarianceController(LOAD, 100.0, smoothing=0.5),
            MinimumVarianceController(LOAD, 100.0, smoothing=0.5),
        ]
        stacked = MinimumVarianceController.stack(controllers)
        stacked.decide(np.array([0.01, 0.03]), np.array([0.6, 0.6]))
        stacked.decide(np.array([0.02, 0.01]), np.array([0.6, 0.6]))
        assert stacked._average_watts.shape == (2,)
        assert stacked._average_watts[0] != stacked._average_watts[1]


class TestFleetDayHistory:
    def test_matches_scalar_day_history_semantics(self):
        history = FleetDayHistory(n_slots=3, depth=2, batch_size=2)
        assert np.isnan(history.slot_mean(0)).all()
        for day in range(3):
            for slot in range(3):
                history.push_slot(np.array([day + slot, 10.0 * (day + slot)]))
        # Last two complete days: day 1 and day 2.
        np.testing.assert_allclose(history.slot_mean(0), [1.5, 15.0])
        np.testing.assert_allclose(history.slot_mean(0, 1), [2.0, 20.0])
        assert history.n_complete_days == 2
        assert history.total_days_completed == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetDayHistory(0, 1, 1)
        with pytest.raises(ValueError):
            FleetDayHistory(1, 0, 1)
        with pytest.raises(ValueError):
            FleetDayHistory(1, 1, 0)


class TestVectorKernels:
    def test_observe_rejects_wrong_shape(self):
        kernel = make_vector_predictor("ewma", 4, 3)
        with pytest.raises(ValueError):
            kernel.observe(np.zeros(2))

    def test_observe_rejects_negative(self):
        kernel = make_vector_predictor("wcma", 4, 2, days=2, k=1)
        with pytest.raises(ValueError):
            kernel.observe(np.array([1.0, -1.0]))

    def test_run_shape(self):
        kernel = make_vector_predictor("persistence", 4, 3)
        samples = np.arange(24, dtype=float).reshape(8, 3)
        out = kernel.run(samples)
        np.testing.assert_array_equal(out, samples)

    def test_supports_vector_flags(self):
        assert supports_vector("wcma")
        assert supports_vector("WCMA")
        assert not supports_vector("pro-energy")
        assert not supports_vector("nope")


class TestFleetSimulator:
    def test_record_shapes_and_names(self, short_trace):
        specs = [_spec(short_trace) for _ in range(3)]
        specs[1].name = "custom"
        result = FleetSimulator(specs, N_SLOTS).run()
        total = short_trace.n_days * N_SLOTS
        assert result.n_nodes == 3
        assert result.total_slots == total
        for field in (
            "duty_requested",
            "duty_achieved",
            "state_of_charge",
            "harvested_joules",
            "consumed_joules",
            "wasted_joules",
            "shortfall_joules",
        ):
            assert getattr(result, field).shape == (total, 3), field
        assert result.node_names == ("node0", "custom", "node2")

    def test_soc_bounds_and_signs(self, short_trace):
        specs = [_spec(short_trace, capacity=c) for c in (150.0, 250.0, 4000.0)]
        result = FleetSimulator(specs, N_SLOTS).run()
        assert (result.state_of_charge >= 0.0).all()
        assert (result.state_of_charge <= 1.0 + 1e-12).all()
        assert (result.harvested_joules >= 0).all()
        assert (result.wasted_joules >= -1e-9).all()
        assert (result.shortfall_joules >= -1e-9).all()
        assert (result.duty_achieved <= result.duty_requested + 1e-12).all()

    def test_summary_and_node_summary(self, short_trace):
        result = FleetSimulator([_spec(short_trace)], N_SLOTS).run()
        assert set(result.summary()) == {
            "n_nodes",
            "total_slots",
            "mean_duty",
            "mean_duty_std",
            "downtime_fraction",
            "waste_fraction",
            "mean_final_soc",
        }
        node = result.node_summary(0)
        assert node["name"] == "node0"
        assert set(node) == {
            "name",
            "mean_duty",
            "duty_std",
            "downtime_fraction",
            "waste_fraction",
            "final_soc",
        }

    def test_per_node_metrics_are_arrays(self, short_trace):
        specs = [_spec(short_trace) for _ in range(4)]
        result = FleetSimulator(specs, N_SLOTS).run()
        for metric in (
            result.mean_duty,
            result.duty_std,
            result.downtime_fraction,
            result.waste_fraction,
            result.final_soc,
        ):
            assert metric.shape == (4,)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetSimulator([], N_SLOTS)

    def test_rejects_non_controller(self, short_trace):
        spec = _spec(short_trace)
        spec.controller = "kansal"
        with pytest.raises(TypeError, match="Controller instance"):
            FleetSimulator([spec], N_SLOTS)

    def test_rejects_mismatched_trace_lengths(self, short_trace):
        longer = build_dataset("HSU", n_days=10)
        with pytest.raises(ValueError, match="same days"):
            FleetSimulator([_spec(short_trace), _spec(longer)], N_SLOTS)

    def test_unknown_predictor_name_raises(self, short_trace):
        with pytest.raises(KeyError, match="unknown predictor"):
            FleetSimulator([_spec(short_trace, predictor="nope")], N_SLOTS).run()

    def test_custom_controller_falls_back_to_scalar_column(self, short_trace):
        spec = _spec(short_trace)
        spec.controller = ProfilePlanningController(
            LOAD, 250.0, n_slots=N_SLOTS, target_soc=0.6
        )
        result = FleetSimulator([spec, _spec(short_trace)], N_SLOTS).run()
        assert np.isfinite(result.duty_achieved).all()

    def test_specs_not_dirtied_between_runs(self, short_trace):
        """Two runs of the same simulator give identical results."""
        simulator = FleetSimulator([_spec(short_trace)], N_SLOTS)
        first = simulator.run()
        second = simulator.run()
        np.testing.assert_array_equal(
            first.state_of_charge, second.state_of_charge
        )
        np.testing.assert_array_equal(first.duty_achieved, second.duty_achieved)

    def test_custom_storage_spec_not_mutated(self, short_trace):
        """Scalar-fallback stores are copied, like the stacked path."""

        class LeakFreeCap(Supercapacitor):
            def leak(self, seconds):
                return 0.0

        store = LeakFreeCap(capacity_joules=250.0, initial_soc=0.5)
        spec = _spec(short_trace)
        spec.storage = store
        FleetSimulator([spec], N_SLOTS).run()
        assert store.state_of_charge == 0.5

    def test_custom_harvester_power_is_honoured(self, short_trace):
        """A subclass overriding power() keeps its non-linear curve."""
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SaturatingHarvester(PVHarvester):
            max_watts: float = 0.02

            def power(self, irradiance_wm2):
                return np.minimum(super().power(irradiance_wm2), self.max_watts)

        harvester = SaturatingHarvester(area_m2=25e-4)
        spec = _spec(short_trace)
        spec.harvester = harvester
        result = FleetSimulator([spec], N_SLOTS).run()

        from repro.solar.slots import SlotView

        means = SlotView.from_trace(short_trace, N_SLOTS).flat_means()
        slot_seconds = 24.0 / N_SLOTS * 3600.0
        expected = np.minimum(means * harvester.gain, 0.02) * slot_seconds
        np.testing.assert_allclose(
            result.harvested_joules[:, 0], expected, rtol=1e-12
        )
        # Saturation bites: some slots harvest less than the linear gain
        # path would have produced.
        assert (result.harvested_joules[:, 0] < means * harvester.gain * slot_seconds - 1e-9).any()

    def test_custom_harvester_energy_is_honoured(self, short_trace):
        """A subclass overriding energy() (not power()) keeps it too."""
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ConverterOverheadHarvester(PVHarvester):
            overhead_joules: float = 0.5

            def energy(self, irradiance_wm2, seconds):
                return np.maximum(
                    super().energy(irradiance_wm2, seconds) - self.overhead_joules,
                    0.0,
                )

        harvester = ConverterOverheadHarvester(area_m2=25e-4)
        spec = _spec(short_trace)
        spec.harvester = harvester
        result = FleetSimulator([spec], N_SLOTS).run()

        from repro.solar.slots import SlotView

        means = SlotView.from_trace(short_trace, N_SLOTS).flat_means()
        slot_seconds = 24.0 / N_SLOTS * 3600.0
        expected = np.maximum(means * harvester.gain * slot_seconds - 0.5, 0.0)
        np.testing.assert_allclose(
            result.harvested_joules[:, 0], expected, atol=1e-12
        )

    def test_vector_predictor_with_unhashable_kwargs(self, short_trace):
        """Factory kwargs holding lists must not break grouping."""
        from repro.core.baselines import PersistencePredictor, PersistenceVector
        from repro.core.registry import register, unregister

        register(
            "test-listkw",
            lambda n_slots, profile=None: PersistencePredictor(n_slots),
            vector_factory=lambda n_slots, batch_size, profile=None: (
                PersistenceVector(n_slots, batch_size)
            ),
        )
        try:
            specs = []
            for _ in range(2):
                spec = _spec(short_trace, predictor="test-listkw")
                spec.predictor_kwargs = {"profile": [0.1, 0.2]}
                specs.append(spec)
            result = FleetSimulator(specs, N_SLOTS).run()
            assert result.n_nodes == 2
            # Equal list kwargs land in one shared vector kernel group.
            columns = FleetSimulator(specs, N_SLOTS)._build_predictor_columns()
            assert len(columns) == 1
        finally:
            unregister("test-listkw")

    def test_repeated_run_reuses_cached_engine(self, short_trace):
        """The B=1 wrapper rebuilds only when a component is swapped."""
        from repro.core.baselines import PersistencePredictor
        from repro.management.node import SensorNodeSimulation

        sim = SensorNodeSimulation(
            trace=short_trace,
            n_slots=N_SLOTS,
            predictor=PersistencePredictor(N_SLOTS),
            controller=KansalController(LOAD, 250.0, target_soc=0.6),
            storage=Supercapacitor(capacity_joules=250.0),
            load=LOAD,
        )
        first = sim.run()
        engine = sim._fleet
        second = sim.run()
        assert sim._fleet is engine
        np.testing.assert_array_equal(first.duty_achieved, second.duty_achieved)
        sim.predictor = PersistencePredictor(N_SLOTS)
        sim.run()
        assert sim._fleet is not engine
