"""Tests for the PV harvester and duty-cycled load models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.management.consumer import DutyCycledLoad
from repro.management.harvester import PVHarvester


class TestPVHarvester:
    def test_gain(self):
        harvester = PVHarvester(
            area_m2=0.01, panel_efficiency=0.2, conditioning_efficiency=0.5
        )
        assert harvester.gain == pytest.approx(0.001)
        assert harvester.power(1000.0) == pytest.approx(1.0)

    def test_vectorised(self):
        harvester = PVHarvester()
        out = harvester.power(np.array([0.0, 500.0, 1000.0]))
        assert out.shape == (3,)
        assert out[0] == 0.0
        assert out[2] == pytest.approx(2 * out[1])

    def test_energy(self):
        harvester = PVHarvester(
            area_m2=0.01, panel_efficiency=0.2, conditioning_efficiency=1.0
        )
        # 2 W electrical for 100 s = 200 J.
        assert harvester.energy(1000.0, 100.0) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PVHarvester(area_m2=0.0)
        with pytest.raises(ValueError):
            PVHarvester(panel_efficiency=1.5)
        harvester = PVHarvester()
        with pytest.raises(ValueError):
            harvester.power(-1.0)
        with pytest.raises(ValueError):
            harvester.energy(100.0, -1.0)


class TestDutyCycledLoad:
    def test_power_endpoints(self):
        load = DutyCycledLoad(
            active_power_watts=0.1,
            sleep_power_watts=0.001,
            min_duty=0.0,
            max_duty=1.0,
        )
        assert load.power(0.0) == pytest.approx(0.001)
        assert load.power(1.0) == pytest.approx(0.1)

    def test_clamping(self):
        load = DutyCycledLoad(min_duty=0.1, max_duty=0.8)
        assert load.clamp(0.05) == 0.1
        assert load.clamp(0.95) == 0.8
        assert load.clamp(0.5) == 0.5

    def test_energy(self):
        load = DutyCycledLoad(
            active_power_watts=1.0, sleep_power_watts=0.0, min_duty=0.0
        )
        assert load.energy(0.5, 100.0) == pytest.approx(50.0)

    def test_duty_for_power_inverts_power(self):
        load = DutyCycledLoad(min_duty=0.0, max_duty=1.0)
        for duty in (0.0, 0.25, 0.6, 1.0):
            watts = load.power(duty)
            assert load.duty_for_power(watts) == pytest.approx(duty, abs=1e-12)

    def test_duty_for_power_clamps(self):
        load = DutyCycledLoad(min_duty=0.1, max_duty=0.9)
        assert load.duty_for_power(0.0) == 0.1
        assert load.duty_for_power(10.0) == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            DutyCycledLoad(active_power_watts=0.0)
        with pytest.raises(ValueError):
            DutyCycledLoad(active_power_watts=1e-6, sleep_power_watts=1e-3)
        with pytest.raises(ValueError):
            DutyCycledLoad(min_duty=0.5, max_duty=0.2)
        load = DutyCycledLoad()
        with pytest.raises(ValueError):
            load.energy(0.5, -1.0)
        with pytest.raises(ValueError):
            load.duty_for_power(-0.1)

    @given(st.floats(0.0, 1.0))
    def test_power_monotone_in_duty(self, duty):
        load = DutyCycledLoad(min_duty=0.0, max_duty=1.0)
        assert load.power(duty) <= load.power(1.0)
        assert load.power(duty) >= load.power(0.0)
