"""Fleet-vs-scalar parity: the lock-step engine must not change numbers.

For every built-in predictor and every built-in controller, a B-node
fleet run with per-node configurations identical to B independent
:class:`~repro.management.node.SensorNodeSimulation` runs must match
those runs elementwise to ~1e-9 across every per-slot record array.

The fleet nodes deliberately differ from *each other* (different
traces, storage capacities and types) so the test exercises real
array-state heterogeneity, not just a broadcast scalar.
"""

import numpy as np
import pytest

from repro.core.registry import make_predictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    FixedDutyController,
    KansalController,
    MinimumVarianceController,
    OracleController,
)
from repro.management.fleet import FleetNodeSpec, FleetSimulator
from repro.management.harvester import PVHarvester
from repro.management.node import SensorNodeSimulation
from repro.management.storage import Battery, Supercapacitor
from repro.solar.datasets import build_dataset

N_SLOTS = 48
LOAD = DutyCycledLoad(active_power_watts=40e-3, sleep_power_watts=40e-6)
HARVESTER = PVHarvester(area_m2=25e-4)

RECORD_FIELDS = (
    "duty_requested",
    "duty_achieved",
    "state_of_charge",
    "harvested_joules",
    "consumed_joules",
    "wasted_joules",
    "shortfall_joules",
)

#: (name, factory kwargs) for every registered predictor exercised by
#: the fleet engine -- the five vectorized ones plus a scalar-only
#: fallback.  Small D keeps warm-up short on the 12-day test traces.
PREDICTOR_CASES = [
    ("wcma", {"alpha": 0.7, "days": 3, "k": 2}),
    ("ewma", {"gamma": 0.5}),
    ("persistence", {}),
    ("previous-day", {}),
    ("moving-average", {"days": 3}),
    ("pro-energy", {}),  # no vector kernel: per-node scalar fallback
]

CONTROLLER_KINDS = ("kansal", "minvar", "fixed", "oracle")


@pytest.fixture(scope="module")
def traces():
    """Two short site traces the fleet nodes alternate over."""
    return (build_dataset("HSU", n_days=12), build_dataset("PFCI", n_days=12))


def _make_controller(kind: str, capacity: float):
    if kind == "kansal":
        return KansalController(LOAD, capacity, target_soc=0.6)
    if kind == "minvar":
        return MinimumVarianceController(LOAD, capacity, target_soc=0.6)
    if kind == "fixed":
        return FixedDutyController(0.4)
    if kind == "oracle":
        return OracleController(LOAD, capacity, target_soc=0.6)
    raise ValueError(kind)


def _make_storage(capacity: float):
    # Small stores as supercaps, larger as batteries: mixes both
    # storage classes (and their different leak laws) into one fleet.
    if capacity < 1000.0:
        return Supercapacitor(capacity_joules=capacity, initial_soc=0.5)
    return Battery(capacity_joules=capacity, initial_soc=0.5)


def _node_configs(traces):
    """Three heterogeneous per-node configurations."""
    hsu, pfci = traces
    return [
        (hsu, 250.0),
        (pfci, 400.0),
        (hsu, 4000.0),
    ]


def _assert_fleet_matches_scalars(traces, predictor_name, predictor_kwargs, kind):
    configs = _node_configs(traces)
    specs = [
        FleetNodeSpec(
            trace=trace,
            controller=_make_controller(kind, capacity),
            predictor=predictor_name,
            predictor_kwargs=predictor_kwargs,
            harvester=HARVESTER,
            storage=_make_storage(capacity),
            load=LOAD,
        )
        for trace, capacity in configs
    ]
    fleet_result = FleetSimulator(specs, N_SLOTS).run()
    assert fleet_result.n_nodes == len(configs)

    for node, (trace, capacity) in enumerate(configs):
        scalar_result = SensorNodeSimulation(
            trace=trace,
            n_slots=N_SLOTS,
            predictor=make_predictor(predictor_name, N_SLOTS, **predictor_kwargs),
            controller=_make_controller(kind, capacity),
            harvester=HARVESTER,
            storage=_make_storage(capacity),
            load=LOAD,
        ).run()
        node_result = fleet_result.node_result(node)
        for field in RECORD_FIELDS:
            np.testing.assert_allclose(
                getattr(node_result, field),
                getattr(scalar_result, field),
                atol=1e-9,
                rtol=0.0,
                err_msg=f"{predictor_name}/{kind}, node {node}, {field}",
            )


class TestPredictorParity:
    """Every predictor, under the Kansal controller."""

    @pytest.mark.parametrize(
        "name,kwargs", PREDICTOR_CASES, ids=[c[0] for c in PREDICTOR_CASES]
    )
    def test_fleet_matches_scalar_runs(self, traces, name, kwargs):
        _assert_fleet_matches_scalars(traces, name, kwargs, "kansal")


class TestControllerParity:
    """Every controller, under the WCMA predictor."""

    @pytest.mark.parametrize("kind", CONTROLLER_KINDS)
    def test_fleet_matches_scalar_runs(self, traces, kind):
        _assert_fleet_matches_scalars(
            traces, "wcma", {"alpha": 0.7, "days": 3, "k": 2}, kind
        )


class TestMixedFleetParity:
    """One fleet mixing predictors, controllers, storage and sites."""

    def test_heterogeneous_fleet_matches_scalar_runs(self, traces):
        hsu, pfci = traces
        cases = [
            (hsu, "wcma", {"alpha": 0.7, "days": 3, "k": 2}, "kansal", 250.0),
            (pfci, "ewma", {}, "minvar", 400.0),
            (hsu, "persistence", {}, "oracle", 250.0),
            (pfci, "moving-average", {"days": 3}, "fixed", 4000.0),
            (hsu, "pro-energy", {}, "kansal", 4000.0),
            # Same predictor/params as node 0 but another site: lands in
            # the same vector-kernel group with a different column.
            (pfci, "wcma", {"alpha": 0.7, "days": 3, "k": 2}, "kansal", 250.0),
        ]
        specs = [
            FleetNodeSpec(
                trace=trace,
                controller=_make_controller(kind, capacity),
                predictor=name,
                predictor_kwargs=kwargs,
                harvester=HARVESTER,
                storage=_make_storage(capacity),
                load=LOAD,
            )
            for trace, name, kwargs, kind, capacity in cases
        ]
        fleet_result = FleetSimulator(specs, N_SLOTS).run()

        for node, (trace, name, kwargs, kind, capacity) in enumerate(cases):
            scalar_result = SensorNodeSimulation(
                trace=trace,
                n_slots=N_SLOTS,
                predictor=make_predictor(name, N_SLOTS, **kwargs),
                controller=_make_controller(kind, capacity),
                harvester=HARVESTER,
                storage=_make_storage(capacity),
                load=LOAD,
            ).run()
            node_result = fleet_result.node_result(node)
            for field in RECORD_FIELDS:
                np.testing.assert_allclose(
                    getattr(node_result, field),
                    getattr(scalar_result, field),
                    atol=1e-9,
                    rtol=0.0,
                    err_msg=f"{name}/{kind}, node {node}, {field}",
                )


class TestLegacyReferenceParity:
    """The engine must reproduce the historical scalar loop's numbers.

    ``SensorNodeSimulation`` is itself a B=1 fleet now, so comparing
    fleet vs ``SensorNodeSimulation`` alone would check the vectorized
    physics against itself.  This reference reimplements the pre-fleet
    per-slot loop -- harvester, supercapacitor, load and Kansal
    controller arithmetic inlined as plain Python floats, straight from
    their documented semantics -- and pins the engine to it.
    """

    @staticmethod
    def _legacy_run(trace, predictor, n_slots, capacity, area_m2, controller_kind,
                    storage_kind):
        from repro.solar.slots import SlotView

        view = SlotView.from_trace(trace, n_slots)
        starts = view.flat_starts()
        means = view.flat_means()
        slot_seconds = view.slot_duration_hours * 3600.0

        gain = area_m2 * 0.15 * 0.85  # panel * conditioning efficiency
        if storage_kind == "supercap":
            charge_eff, discharge_eff = 0.98, 0.98
        else:  # battery
            charge_eff, discharge_eff = 0.90, 0.95
        stored = 0.5 * capacity
        active, sleep = LOAD.active_power_watts, LOAD.sleep_power_watts
        min_duty, max_duty = LOAD.min_duty, LOAD.max_duty
        target_soc, horizon = 0.6, 86_400.0
        correction_gain = 1.0 if controller_kind == "kansal" else 0.5
        smoothing, average_watts = 0.02, None

        predictor.reset()
        records = {
            "duty_achieved": [],
            "state_of_charge": [],
            "wasted_joules": [],
            "shortfall_joules": [],
        }
        for t in range(starts.size):
            predicted = predictor.observe(float(starts[t]))
            predicted_power = max(0.0, predicted) * gain

            if controller_kind == "minvar":
                if average_watts is None:
                    average_watts = predicted_power
                else:
                    average_watts += smoothing * (predicted_power - average_watts)
                planned_power = average_watts
            else:
                planned_power = predicted_power
            soc = stored / capacity
            correction = correction_gain * (soc - target_soc) * capacity / horizon
            budget = max(0.0, planned_power + correction)
            duty = (budget - sleep) / (active - sleep)
            duty = max(min_duty, min(max_duty, duty))

            incoming = (float(means[t]) * gain) * slot_seconds
            charged = min(incoming * charge_eff, capacity - stored)
            stored += charged
            records["wasted_joules"].append(incoming * charge_eff - charged)

            request = (duty * active + (1.0 - duty) * sleep) * slot_seconds
            drawn = request / discharge_eff
            if drawn <= stored:
                stored -= drawn
                supplied = request
            else:
                supplied = stored * discharge_eff
                stored = 0.0
            records["shortfall_joules"].append(request - supplied)
            records["duty_achieved"].append(
                duty * (supplied / request) if request > 0 else 0.0
            )

            if storage_kind == "supercap":
                leakage = 200e-6 * (stored / capacity)
            else:
                leakage = 10e-6
            stored -= min(stored, leakage * slot_seconds)
            records["state_of_charge"].append(stored / capacity)
        return {key: np.array(vals) for key, vals in records.items()}

    @pytest.mark.parametrize(
        "controller_kind,storage_kind,capacity",
        [("kansal", "supercap", 250.0), ("minvar", "battery", 4000.0)],
    )
    def test_engine_matches_legacy_loop(
        self, traces, controller_kind, storage_kind, capacity
    ):
        hsu, _ = traces
        area = 25e-4
        reference = self._legacy_run(
            hsu,
            make_predictor("wcma", N_SLOTS, alpha=0.7, days=3, k=2),
            N_SLOTS,
            capacity,
            area,
            controller_kind,
            storage_kind,
        )
        controller = (
            KansalController(LOAD, capacity, target_soc=0.6)
            if controller_kind == "kansal"
            else MinimumVarianceController(LOAD, capacity, target_soc=0.6)
        )
        storage = (
            Supercapacitor(capacity_joules=capacity, initial_soc=0.5)
            if storage_kind == "supercap"
            else Battery(capacity_joules=capacity, initial_soc=0.5)
        )
        engine = SensorNodeSimulation(
            trace=hsu,
            n_slots=N_SLOTS,
            predictor=make_predictor("wcma", N_SLOTS, alpha=0.7, days=3, k=2),
            controller=controller,
            harvester=PVHarvester(area_m2=area),
            storage=storage,
            load=LOAD,
        ).run()
        for field, expected in reference.items():
            np.testing.assert_allclose(
                getattr(engine, field), expected, atol=1e-9, rtol=0.0,
                err_msg=f"{controller_kind}/{storage_kind}: {field}",
            )


class TestSingleNodeParity:
    """B=1 fleet output matches the single-node simulation exactly."""

    def test_b1_fleet_equals_scalar_simulation(self, traces):
        hsu, _ = traces
        spec = FleetNodeSpec(
            trace=hsu,
            controller=_make_controller("kansal", 250.0),
            predictor="wcma",
            predictor_kwargs={"alpha": 0.7, "days": 3, "k": 2},
            harvester=HARVESTER,
            storage=_make_storage(250.0),
            load=LOAD,
        )
        fleet_result = FleetSimulator([spec], N_SLOTS).run()
        scalar_result = SensorNodeSimulation(
            trace=hsu,
            n_slots=N_SLOTS,
            predictor=make_predictor("wcma", N_SLOTS, alpha=0.7, days=3, k=2),
            controller=_make_controller("kansal", 250.0),
            harvester=HARVESTER,
            storage=_make_storage(250.0),
            load=LOAD,
        ).run()
        node_result = fleet_result.node_result(0)
        for field in RECORD_FIELDS:
            np.testing.assert_allclose(
                getattr(node_result, field),
                getattr(scalar_result, field),
                atol=1e-9,
                rtol=0.0,
                err_msg=field,
            )
