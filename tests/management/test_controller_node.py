"""Tests for controllers and the full node simulation."""

import numpy as np
import pytest

from repro.core.baselines import PersistencePredictor
from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.management.consumer import DutyCycledLoad
from repro.management.controller import (
    FixedDutyController,
    KansalController,
    MinimumVarianceController,
    OracleController,
)
from repro.management.harvester import PVHarvester
from repro.management.node import SensorNodeSimulation
from repro.management.storage import Battery, Supercapacitor

LOAD = DutyCycledLoad(
    active_power_watts=40e-3, sleep_power_watts=40e-6, min_duty=0.02
)


class TestFixedDuty:
    def test_constant(self):
        controller = FixedDutyController(0.3)
        assert controller.decide(0.0, 0.1) == 0.3
        assert controller.decide(5.0, 0.9) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedDutyController(1.5)


class TestKansal:
    def test_budget_tracks_prediction(self):
        controller = KansalController(LOAD, 100.0, target_soc=0.5, correction_gain=0.0)
        low = controller.decide(LOAD.power(0.1), 0.5)
        high = controller.decide(LOAD.power(0.8), 0.5)
        assert high > low

    def test_soc_correction_direction(self):
        controller = KansalController(
            LOAD, 10_000.0, target_soc=0.5, correction_gain=10.0
        )
        surplus = controller.decide(LOAD.power(0.5), 0.9)
        deficit = controller.decide(LOAD.power(0.5), 0.1)
        assert surplus > deficit

    def test_validation(self):
        with pytest.raises(ValueError):
            KansalController(LOAD, 0.0)
        with pytest.raises(ValueError):
            KansalController(LOAD, 10.0, target_soc=2.0)
        controller = KansalController(LOAD, 10.0)
        with pytest.raises(ValueError):
            controller.decide(-1.0, 0.5)


class TestMinimumVariance:
    def test_smooths_predictions(self):
        controller = MinimumVarianceController(
            LOAD, 10_000.0, smoothing=0.01, correction_gain=0.0
        )
        duties = []
        rng = np.random.default_rng(3)
        for _ in range(200):
            prediction = float(rng.uniform(0.0, LOAD.power(1.0)))
            duties.append(controller.decide(prediction, 0.6))
        # Later decisions barely move despite noisy predictions.
        late = np.diff(duties[100:])
        assert np.abs(late).max() < 0.05

    def test_reset_clears_average(self):
        controller = MinimumVarianceController(LOAD, 100.0)
        controller.decide(1.0, 0.5)
        controller.reset()
        assert controller._average_watts is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MinimumVarianceController(LOAD, 100.0, smoothing=0.0)


class TestNodeSimulation:
    def make_sim(self, trace, predictor=None, controller=None, storage=None):
        predictor = predictor or WCMAPredictor(48, WCMAParams(0.7, 5, 2))
        controller = controller or KansalController(LOAD, 250.0, target_soc=0.6)
        storage = storage or Supercapacitor(capacity_joules=250.0, initial_soc=0.5)
        return SensorNodeSimulation(
            trace=trace,
            n_slots=48,
            predictor=predictor,
            controller=controller,
            harvester=PVHarvester(area_m2=25e-4),
            storage=storage,
            load=LOAD,
        )

    def test_records_every_slot(self, hsu_trace):
        result = self.make_sim(hsu_trace).run()
        total = hsu_trace.n_days * 48
        assert result.duty_achieved.shape == (total,)
        assert result.state_of_charge.shape == (total,)

    def test_energy_conservation_signs(self, hsu_trace):
        result = self.make_sim(hsu_trace).run()
        assert (result.harvested_joules >= 0).all()
        assert (result.consumed_joules >= -1e-9).all()
        assert (result.wasted_joules >= -1e-9).all()
        assert (result.shortfall_joules >= -1e-9).all()

    def test_soc_bounds(self, hsu_trace):
        result = self.make_sim(hsu_trace).run()
        assert (result.state_of_charge >= 0.0).all()
        assert (result.state_of_charge <= 1.0 + 1e-12).all()

    def test_achieved_never_exceeds_requested(self, hsu_trace):
        result = self.make_sim(hsu_trace).run()
        assert (result.duty_achieved <= result.duty_requested + 1e-12).all()

    def test_fixed_duty_high_demand_browns_out(self, hsu_trace):
        """A greedy fixed duty on a small cap must hit downtime at night."""
        result = self.make_sim(
            hsu_trace, controller=FixedDutyController(1.0)
        ).run()
        assert result.downtime_fraction > 0.05

    def test_adaptive_beats_fixed_duty(self, hsu_trace):
        adaptive = self.make_sim(hsu_trace).run()
        fixed = self.make_sim(hsu_trace, controller=FixedDutyController(1.0)).run()
        assert adaptive.downtime_fraction < fixed.downtime_fraction

    def test_oracle_controller_uses_true_mean(self, hsu_trace):
        oracle = self.make_sim(
            hsu_trace,
            predictor=PersistencePredictor(48),
            controller=OracleController(LOAD, 250.0, target_soc=0.6),
        ).run()
        assert oracle.downtime_fraction <= 0.02

    def test_summary_keys(self, hsu_trace):
        summary = self.make_sim(hsu_trace).run().summary()
        assert set(summary) == {
            "mean_duty",
            "duty_std",
            "downtime_fraction",
            "waste_fraction",
            "final_soc",
        }

    def test_minvar_duty_smoother_than_kansal(self, hsu_trace):
        battery = lambda: Battery(capacity_joules=4000.0, initial_soc=0.6)
        kansal = self.make_sim(
            hsu_trace,
            controller=KansalController(LOAD, 4000.0, target_soc=0.6),
            storage=battery(),
        ).run()
        minvar = self.make_sim(
            hsu_trace,
            controller=MinimumVarianceController(LOAD, 4000.0, target_soc=0.6),
            storage=battery(),
        ).run()
        assert minvar.duty_std < kansal.duty_std
