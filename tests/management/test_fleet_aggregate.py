"""Tests for FleetSimulator.run_aggregate and FleetAggregate.

The aggregate path must report the same per-node physics as the full
record path (``run``), while holding only ``(B,)`` accumulators -- it
is what the sharded fleet engine streams and checkpoints.
"""

import numpy as np
import pytest

from repro.experiments.fleet import build_fleet_specs
from repro.management import FleetAggregate, FleetSimulator


@pytest.fixture(scope="module")
def specs():
    return build_fleet_specs(
        n_nodes=12,
        sites=("SPMD", "PFCI"),
        n_days=4,
        predictors=("wcma", "ewma"),
        controllers=("kansal", "fixed"),
        capacities=(50.0, 9000.0),
        scenarios=("clean", "dropout"),
    )


@pytest.fixture(scope="module")
def record(specs):
    return FleetSimulator(specs, 48).run()


@pytest.fixture(scope="module")
def aggregate(specs):
    return FleetSimulator(specs, 48).run_aggregate()


class TestParityWithRun:
    """Aggregate metrics vs the same quantities computed from records.

    The aggregate accumulates running sums in time order while ``run``
    stores the full record and reduces at the end (numpy pairwise
    summation), so agreement is to ~1e-12 relative, not bitwise.
    """

    def test_geometry_and_names(self, record, aggregate):
        assert aggregate.n_nodes == record.n_nodes == 12
        assert aggregate.total_slots == record.total_slots
        assert aggregate.n_slots == record.n_slots
        assert aggregate.node_names == record.node_names

    def test_mean_duty(self, record, aggregate):
        np.testing.assert_allclose(
            aggregate.mean_duty, record.duty_achieved.mean(axis=0), rtol=1e-12
        )

    def test_duty_std(self, record, aggregate):
        np.testing.assert_allclose(
            aggregate.duty_std, record.duty_achieved.std(axis=0),
            rtol=1e-9, atol=1e-15,
        )

    def test_downtime_fraction(self, record, aggregate):
        np.testing.assert_allclose(
            aggregate.downtime_fraction,
            (record.shortfall_joules > 0).mean(axis=0),
            rtol=0, atol=0,
        )
        expected = (record.shortfall_joules > 0).sum(axis=0)
        assert np.array_equal(aggregate.shortfall_slots, expected)

    def test_energy_totals_and_waste(self, record, aggregate):
        np.testing.assert_allclose(
            aggregate.harvested_joules_total,
            record.harvested_joules.sum(axis=0), rtol=1e-12,
        )
        np.testing.assert_allclose(
            aggregate.wasted_joules_total,
            record.wasted_joules.sum(axis=0), rtol=1e-12, atol=1e-12,
        )
        harvest = record.harvested_joules.sum(axis=0)
        expected = np.divide(
            record.wasted_joules.sum(axis=0), harvest,
            out=np.zeros_like(harvest), where=harvest > 0,
        )
        np.testing.assert_allclose(
            aggregate.waste_fraction, expected, rtol=1e-9, atol=1e-15
        )

    def test_final_soc_bitwise(self, record, aggregate):
        assert np.array_equal(aggregate.final_soc, record.final_soc)

    def test_summary_close_to_record_summary(self, record, aggregate):
        a, r = aggregate.summary(), record.summary()
        assert a["n_nodes"] == r["n_nodes"]
        assert a["total_slots"] == r["total_slots"]
        for key in ("mean_duty", "downtime_fraction", "waste_fraction",
                    "mean_final_soc"):
            assert a[key] == pytest.approx(r[key], rel=1e-9, abs=1e-12)

    def test_run_aggregate_is_deterministic(self, specs, aggregate):
        again = FleetSimulator(specs, 48).run_aggregate()
        for name in FleetAggregate._FLOAT_FIELDS:
            assert np.array_equal(getattr(again, name), getattr(aggregate, name))


class TestAggregateValue:
    def test_astype_float32(self, aggregate):
        cast = aggregate.astype(np.float32)
        assert cast.mean_duty.dtype == np.float32
        assert cast.shortfall_slots.dtype == aggregate.shortfall_slots.dtype
        np.testing.assert_allclose(cast.mean_duty, aggregate.mean_duty, rtol=1e-6)

    def test_node_summary_keys(self, aggregate):
        digest = aggregate.node_summary(0)
        assert set(digest) == {
            "name", "mean_duty", "duty_std", "downtime_fraction",
            "waste_fraction", "final_soc",
        }

    def test_concat_identity_and_split(self, aggregate):
        assert FleetAggregate.concat([aggregate]) is aggregate

    def test_concat_rejects_mixed_geometry(self, aggregate, specs):
        other = FleetSimulator(specs, 24).run_aggregate()
        with pytest.raises(ValueError):
            FleetAggregate.concat([aggregate, other])

    def test_concat_rejects_empty(self):
        with pytest.raises(ValueError):
            FleetAggregate.concat([])
