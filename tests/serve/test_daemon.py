"""Tests for the serve daemon transports (stdin JSONL and HTTP).

In-process loop tests pin the line protocol (ready first, one response
per request, shutdown last); subprocess tests pin the operational
contract of the issue: the daemon survives real SIGINT with a clean
state flush and exit status 0, and a restarted daemon resumes from the
flushed state.
"""

import io
import json
import os
import signal
import subprocess
import sys
import textwrap
import urllib.error
import urllib.request
from pathlib import Path

import repro
from repro.cli import main
from repro.serve import ForecastService, serve_stdin

#: Absolute src/ path so daemon subprocesses import this checkout
#: regardless of their working directory.
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])
SUBPROC_ENV = {**os.environ, "PYTHONPATH": SRC_DIR}


def run_loop(requests, **service_kwargs):
    service = ForecastService(**{"n_slots": 48, **service_kwargs})
    lines = "\n".join(
        r if isinstance(r, str) else json.dumps(r) for r in requests
    )
    out = io.StringIO()
    rc = serve_stdin(service, io.StringIO(lines + "\n"), out)
    return rc, [json.loads(line) for line in out.getvalue().splitlines()]


class TestStdinLoop:
    def test_ready_responses_shutdown_ordering(self):
        rc, lines = run_loop(
            [
                {"op": "register", "site": "SPMD"},
                {"op": "observe", "site": "SPMD", "value": 10.0},
                {"op": "forecast", "site": "SPMD"},
            ]
        )
        assert rc == 0
        assert lines[0]["event"] == "ready"
        assert lines[0]["predictor"] == "wcma" and lines[0]["n_slots"] == 48
        assert [ln.get("op") for ln in lines[1:-1]] == [
            "register", "observe", "forecast",
        ]
        assert lines[-1] == {
            "event": "shutdown", "reason": "eof", "checkpointed": 0,
        }

    def test_one_response_per_request_in_order(self):
        requests = [
            {"op": "register", "site": "SPMD"},
            *(
                {"op": "observe", "site": "SPMD", "value": float(i)}
                for i in range(20)
            ),
        ]
        rc, lines = run_loop(requests)
        responses = lines[1:-1]
        assert len(responses) == len(requests)
        assert [r["value"] for r in responses[1:]] == [float(i) for i in range(20)]

    def test_bad_json_and_blank_lines_do_not_kill_the_loop(self):
        rc, lines = run_loop(
            [
                "this is not json",
                "",
                {"op": "register", "site": "SPMD"},
                '{"op": "observe", "site": "SPMD"',  # truncated JSON
                {"op": "observe", "site": "SPMD", "value": 5.0},
            ]
        )
        assert rc == 0
        bodies = lines[1:-1]
        assert len(bodies) == 4  # the blank line produces no response
        assert bodies[0]["ok"] is False and "bad JSON" in bodies[0]["error"]
        assert bodies[1]["ok"] is True
        assert bodies[2]["ok"] is False and "bad JSON" in bodies[2]["error"]
        assert bodies[3]["ok"] is True and bodies[3]["prediction"] == 5.0

    def test_eof_flushes_pending_state(self, tmp_path):
        rc, lines = run_loop(
            [
                {"op": "register", "site": "SPMD"},
                {"op": "observe", "site": "SPMD", "value": 9.0},
            ],
            state_dir=tmp_path,
            checkpoint_every=1000,  # nothing auto-flushed mid-loop
        )
        assert rc == 0
        assert lines[-1] == {
            "event": "shutdown", "reason": "eof", "checkpointed": 1,
        }
        resumed = ForecastService(n_slots=48, state_dir=tmp_path)
        reg = resumed.handle({"op": "register", "site": "SPMD"})
        assert reg["observed"] == 1

    def test_cli_serve_in_process(self, monkeypatch, capsys):
        requests = [
            {"op": "register", "site": "ECSU"},
            {"op": "observe", "site": "ECSU", "value": 44.0},
        ]
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"),
        )
        rc = main(["serve", "--predictor", "ewma"])
        assert rc == 0
        lines = [json.loads(ln) for ln in capsys.readouterr().out.splitlines()]
        assert lines[0]["event"] == "ready" and lines[0]["predictor"] == "ewma"
        assert lines[2]["prediction"] == 44.0
        assert lines[-1]["event"] == "shutdown"

    def test_cli_rejects_unknown_predictor(self, capsys):
        assert main(["serve", "--predictor", "nope"]) == 2
        assert "unknown predictor" in capsys.readouterr().err


def spawn_daemon(tmp_path, *extra):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(tmp_path / "state"), *extra,
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=SUBPROC_ENV,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["event"] == "ready"
    return proc, ready


def ask(proc, request):
    proc.stdin.write(json.dumps(request) + "\n")
    proc.stdin.flush()
    return json.loads(proc.stdout.readline())


class TestDaemonProcess:
    def test_sigint_flushes_state_and_exits_zero(self, tmp_path):
        proc, _ = spawn_daemon(tmp_path, "--checkpoint-every", "1000")
        try:
            assert ask(proc, {"op": "register", "site": "SPMD"})["ok"]
            obs = ask(proc, {"op": "observe", "site": "SPMD", "value": 77.0})
            assert obs["ok"] and obs["checkpointed"] is False
            proc.send_signal(signal.SIGINT)
            tail, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            last = json.loads(tail.splitlines()[-1])
            assert last == {
                "event": "shutdown", "reason": "signal", "checkpointed": 1,
            }
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # A second daemon resumes the flushed state across processes.
        proc2, _ = spawn_daemon(tmp_path)
        try:
            reg = ask(proc2, {"op": "register", "site": "SPMD"})
            assert reg["observed"] == 1 and "resumed_from" in reg
            obs = ask(proc2, {"op": "observe", "site": "SPMD", "value": 80.0})
            assert obs["day"] == 0 and obs["slot"] == 1
            proc2.send_signal(signal.SIGINT)
            _, err = proc2.communicate(timeout=30)
            assert proc2.returncode == 0, err
        finally:
            if proc2.poll() is None:
                proc2.kill()
                proc2.wait()

    def test_sigint_mid_replay_resumes_consistently(self, tmp_path):
        """Interrupting a busy daemon never leaves a torn state file."""
        code = textwrap.dedent(
            """
            import json, sys
            from repro.serve import ForecastService, serve_stdin
            svc = ForecastService(n_slots=48, state_dir=sys.argv[1])
            sys.exit(serve_stdin(svc))
            """
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code, str(tmp_path / "state")],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=SUBPROC_ENV,
        )
        try:
            json.loads(proc.stdout.readline())
            assert ask(proc, {"op": "register", "site": "SPMD"})["ok"]
            for i in range(30):
                ask(proc, {"op": "observe", "site": "SPMD", "value": float(i)})
            proc.send_signal(signal.SIGINT)
            proc.communicate(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        resumed = ForecastService(n_slots=48, state_dir=tmp_path / "state")
        reg = resumed.handle({"op": "register", "site": "SPMD"})
        assert reg["observed"] == 30


class TestHTTP:
    def test_http_round_trip_and_sigint(self, tmp_path):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--http", "0", "--state-dir", str(tmp_path / "state"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=SUBPROC_ENV,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            port = ready["port"]

            def post(payload):
                req = urllib.request.Request(
                    f"http://127.0.0.1:{port}/",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(req, timeout=10) as resp:
                        return resp.status, json.loads(resp.read())
                except urllib.error.HTTPError as exc:
                    return exc.code, json.loads(exc.read())

            status, body = post({"op": "register", "site": "SPMD"})
            assert status == 200 and body["ok"]
            status, body = post({"op": "observe", "site": "SPMD", "value": 12.0})
            assert status == 200 and body["prediction"] == 12.0
            status, body = post({"op": "observe", "site": "NOPE", "value": 1.0})
            assert status == 400 and body["ok"] is False
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as resp:
                assert json.loads(resp.read())["event"] == "ready"

            proc.send_signal(signal.SIGINT)
            tail, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            assert json.loads(tail.splitlines()[-1])["event"] == "shutdown"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert (tmp_path / "state").is_dir()
