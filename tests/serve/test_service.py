"""Tests for the transport-agnostic forecast service.

Covers the request/response protocol (audit-line schema included), the
register -> observe -> forecast lifecycle, replay warm-up parity with
the evaluation layer, checkpoint/resume through a real state store, and
thread safety of concurrent queries.
"""

import threading

import numpy as np
import pytest

from repro.core.registry import make_predictor
from repro.serve import ForecastService
from repro.solar.datasets import build_dataset
from repro.solar.slots import SlotView

AUDIT_FIELDS = {
    "ok", "op", "site", "day", "slot", "predictor", "value",
    "prediction", "state_digest", "checkpointed",
}


class TestProtocol:
    def test_register_observe_forecast(self):
        svc = ForecastService(n_slots=48)
        reg = svc.handle({"op": "register", "site": "spmd"})
        assert reg["ok"] and reg["created"] and reg["site"] == "SPMD"

        obs = svc.handle({"op": "observe", "site": "SPMD", "value": 120.5})
        assert set(obs) == AUDIT_FIELDS
        assert obs["ok"] and obs["day"] == 0 and obs["slot"] == 0
        assert obs["value"] == 120.5
        assert obs["prediction"] == 120.5  # warm-up persistence
        assert len(obs["state_digest"]) == 16

        fc = svc.handle({"op": "forecast", "site": "SPMD"})
        assert fc["ok"] and fc["prediction"] == obs["prediction"]
        assert fc["state_digest"] == obs["state_digest"]
        assert fc["slot"] == 1  # the upcoming slot

    def test_register_idempotent(self):
        svc = ForecastService(n_slots=48)
        svc.handle({"op": "register", "site": "SPMD"})
        again = svc.handle({"op": "register", "site": "SPMD"})
        assert again["ok"] and again["created"] is False

    def test_slot_day_positions_advance(self):
        svc = ForecastService(n_slots=48)
        svc.handle({"op": "register", "site": "SPMD"})
        for i in range(50):
            obs = svc.handle({"op": "observe", "site": "SPMD", "value": 1.0})
            assert obs["day"] == i // 48 and obs["slot"] == i % 48

    def test_errors_are_responses_not_exceptions(self):
        svc = ForecastService(n_slots=48)
        cases = [
            "not a dict",
            {"op": "bogus"},
            {"op": "observe", "site": "SPMD", "value": 1.0},  # unregistered
            {"op": "register", "site": "NOSUCH"},
            {"op": "register"},
            {"op": "forecast", "site": "SPMD"},
        ]
        for request in cases:
            response = svc.handle(request)
            assert response["ok"] is False and response["error"]
        svc.handle({"op": "register", "site": "SPMD"})
        bad_values = [None, "12", True, float("nan"), float("inf")]
        for value in bad_values:
            r = svc.handle({"op": "observe", "site": "SPMD", "value": value})
            assert r["ok"] is False
        r = svc.handle({"op": "observe", "site": "SPMD", "value": -5.0})
        assert r["ok"] is False and "non-negative" in r["error"]

    def test_geometry_mismatch_rejected(self):
        svc = ForecastService(n_slots=7)
        r = svc.handle({"op": "register", "site": "SPMD"})
        assert r["ok"] is False and "does not divide" in r["error"]

    def test_unknown_predictor_rejected_at_construction(self):
        with pytest.raises(KeyError, match="nope"):
            ForecastService(predictor="nope")

    def test_sites_and_stats(self):
        svc = ForecastService(n_slots=48)
        svc.handle({"op": "register", "site": "SPMD"})
        svc.handle({"op": "register", "site": "ECSU"})
        svc.handle({"op": "observe", "site": "ECSU", "value": 3.0})
        sites = svc.handle({"op": "sites"})
        assert [s["site"] for s in sites["sites"]] == ["ECSU", "SPMD"]
        assert sites["sites"][0]["observed"] == 1
        stats = svc.handle({"op": "stats"})
        assert stats["n_sites"] == 2
        assert stats["ops"]["register"] == 2
        assert stats["persistent"] is False


class TestReplay:
    def test_replay_matches_manual_feed(self):
        days = 4
        svc = ForecastService(n_slots=48)
        svc.handle({"op": "register", "site": "SPMD"})
        rep = svc.handle({"op": "replay", "site": "SPMD", "days": days})
        assert rep["ok"] and rep["samples"] == 48 * days

        manual = make_predictor("wcma", 48)
        trace = build_dataset("SPMD", n_days=days)
        last = None
        for v in SlotView.from_trace(trace, 48).flat_starts():
            last = manual.observe(float(v))
        assert rep["prediction"] == last

        # Forecast position continues from the replayed history.
        fc = svc.handle({"op": "forecast", "site": "SPMD"})
        assert fc["day"] == days and fc["slot"] == 0

    def test_dataset_alias_backs_logical_site(self):
        """A logical node name replays its backing dataset's trace."""
        svc = ForecastService(n_slots=48)
        svc.handle({"op": "register", "site": "SPMD"})
        alias = svc.handle(
            {"op": "register", "site": "node-17", "dataset": "spmd"}
        )
        assert alias["ok"] and alias["site"] == "NODE-17"
        assert alias["dataset"] == "SPMD"

        direct = svc.handle({"op": "replay", "site": "SPMD", "days": 2})
        via_alias = svc.handle({"op": "replay", "site": "NODE-17", "days": 2})
        assert via_alias["prediction"] == direct["prediction"]
        assert via_alias["state_digest"] == direct["state_digest"]

        listing = svc.handle({"op": "sites"})["sites"]
        assert {s["site"]: s["dataset"] for s in listing} == {
            "SPMD": "SPMD", "NODE-17": "SPMD",
        }

    def test_dataset_alias_validated(self):
        svc = ForecastService(n_slots=48)
        r = svc.handle(
            {"op": "register", "site": "node-1", "dataset": "NOSUCH"}
        )
        assert r["ok"] is False
        r = svc.handle({"op": "register", "site": "node-1", "dataset": 7})
        assert r["ok"] is False and "dataset" in r["error"]

    def test_replay_needs_days(self):
        svc = ForecastService(n_slots=48)
        svc.handle({"op": "register", "site": "SPMD"})
        for bad in (None, 0, -3, "5", True):
            r = svc.handle({"op": "replay", "site": "SPMD", "days": bad})
            assert r["ok"] is False


class TestPersistence:
    def test_restart_resumes_exactly(self, tmp_path):
        state = tmp_path / "state"
        values = np.abs(np.random.default_rng(3).normal(200, 70, 300))

        unbroken = ForecastService(n_slots=48)
        unbroken.handle({"op": "register", "site": "SPMD"})
        expected = [
            unbroken.handle({"op": "observe", "site": "SPMD", "value": float(v)})
            for v in values
        ]

        first = ForecastService(n_slots=48, state_dir=state)
        first.handle({"op": "register", "site": "SPMD"})
        cut = 130
        head = [
            first.handle({"op": "observe", "site": "SPMD", "value": float(v)})
            for v in values[:cut]
        ]
        del first  # simulated crash-after-checkpoint

        second = ForecastService(n_slots=48, state_dir=state)
        reg = second.handle({"op": "register", "site": "SPMD"})
        assert reg["resumed_from"] == head[-1]["state_digest"]
        assert reg["observed"] == cut
        tail = [
            second.handle({"op": "observe", "site": "SPMD", "value": float(v)})
            for v in values[cut:]
        ]
        resumed = head + tail
        for got, want in zip(resumed, expected):
            assert got["prediction"] == want["prediction"]
            assert (got["day"], got["slot"]) == (want["day"], want["slot"])
        diffs = np.abs(
            np.array([r["prediction"] for r in resumed])
            - np.array([e["prediction"] for e in expected])
        )
        assert diffs.max() <= 1e-12

    def test_checkpoint_every_batches_writes(self, tmp_path):
        svc = ForecastService(n_slots=48, state_dir=tmp_path, checkpoint_every=10)
        svc.handle({"op": "register", "site": "SPMD"})
        flags = [
            svc.handle({"op": "observe", "site": "SPMD", "value": 1.0})["checkpointed"]
            for _ in range(25)
        ]
        assert flags.count(True) == 2  # slots 10 and 20
        flushed = svc.checkpoint_all()
        assert flushed == 1  # the 5 pending slots
        assert svc.checkpoint_all() == 0  # nothing pending now

    def test_explicit_checkpoint_op(self, tmp_path):
        svc = ForecastService(n_slots=48, state_dir=tmp_path, checkpoint_every=1000)
        svc.handle({"op": "register", "site": "SPMD"})
        svc.handle({"op": "observe", "site": "SPMD", "value": 1.0})
        r = svc.handle({"op": "checkpoint"})
        assert r["ok"] and r["checkpointed"] == 1

    def test_without_store_checkpoint_is_noop(self):
        svc = ForecastService(n_slots=48)
        svc.handle({"op": "register", "site": "SPMD"})
        svc.handle({"op": "observe", "site": "SPMD", "value": 1.0})
        assert svc.checkpoint_all() == 0


class TestConcurrency:
    def test_parallel_queries_keep_counters_consistent(self, tmp_path):
        svc = ForecastService(n_slots=48, state_dir=tmp_path, checkpoint_every=5)
        sites = ["SPMD", "ECSU", "ORNL", "HSU"]
        for site in sites:
            svc.handle({"op": "register", "site": site})
        per_thread = 120
        errors = []

        def worker(site):
            for i in range(per_thread):
                r = svc.handle({"op": "observe", "site": site, "value": float(i)})
                if not r.get("ok"):
                    errors.append(r)

        threads = [
            threading.Thread(target=worker, args=(site,))
            for site in sites
            for _ in range(2)  # two threads hammer each site
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        listing = svc.handle({"op": "sites"})["sites"]
        assert [s["observed"] for s in listing] == [2 * per_thread] * len(sites)
        svc.checkpoint_all()
        # A fresh service resumes each site at the full observed count.
        resumed = ForecastService(n_slots=48, state_dir=tmp_path)
        for site in sites:
            reg = resumed.handle({"op": "register", "site": site})
            assert reg["observed"] == 2 * per_thread
