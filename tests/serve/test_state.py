"""Tests for predictor checkpointing and the on-disk state store.

The core guarantee: a predictor resumed from a checkpoint emits the
*same bits* as one that never stopped (the issue's acceptance bound is
1e-12; the implementation achieves exact equality by not serialising
derived caches and recomputing them deterministically on load).
"""

import pickle

import numpy as np
import pytest

from repro.core.base import DayHistory, OnlinePredictor
from repro.core.ewma import EWMAPredictor
from repro.core.registry import make_predictor
from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.serve.state import (
    STATE_FORMAT,
    STATE_VERSION,
    StateError,
    StateStore,
    state_digest,
)


def sample_stream(n_slots=48, days=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(250.0, 90.0, n_slots * days))


PREDICTORS = {
    "wcma": lambda: WCMAPredictor(48, WCMAParams(alpha=0.5, days=4, k=3)),
    "ewma": lambda: EWMAPredictor(48, gamma=0.5),
}


class TestCheckpointResume:
    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    @pytest.mark.parametrize("cut", [1, 48 * 2 + 17, 48 * 5])
    def test_resume_equals_uninterrupted(self, name, cut):
        values = sample_stream()
        unbroken = PREDICTORS[name]()
        expected = [unbroken.observe(float(v)) for v in values]

        first = PREDICTORS[name]()
        head = [first.observe(float(v)) for v in values[:cut]]
        snapshot = pickle.loads(pickle.dumps(first.state_dict()))

        second = PREDICTORS[name]()
        second.load_state_dict(snapshot)
        tail = [second.observe(float(v)) for v in values[cut:]]

        resumed = np.asarray(head + tail)
        np.testing.assert_array_equal(resumed, np.asarray(expected))
        # ... which trivially satisfies the issue's 1e-12 bound.
        assert np.max(np.abs(resumed - np.asarray(expected))) <= 1e-12

    def test_snapshot_is_a_copy(self):
        p = PREDICTORS["wcma"]()
        for v in sample_stream()[:100]:
            p.observe(float(v))
        snap = p.state_dict()
        before = state_digest(snap)
        p.observe(500.0)
        assert state_digest(snap) == before, "snapshot aliased live state"

    def test_wcma_config_mismatch_rejected(self):
        snap = PREDICTORS["wcma"]().state_dict()
        with pytest.raises(ValueError, match="alpha"):
            WCMAPredictor(48, WCMAParams(alpha=0.9, days=4, k=3)).load_state_dict(snap)
        with pytest.raises(ValueError, match="not 'ewma'"):
            EWMAPredictor(48).load_state_dict(snap)

    def test_ewma_config_mismatch_rejected(self):
        snap = EWMAPredictor(48, gamma=0.5).state_dict()
        with pytest.raises(ValueError, match="gamma"):
            EWMAPredictor(48, gamma=0.25).load_state_dict(snap)

    def test_history_geometry_mismatch_rejected(self):
        h = DayHistory(n_slots=48, depth=4)
        with pytest.raises(ValueError, match="history"):
            DayHistory(n_slots=24, depth=4).load_state_dict(h.state_dict())

    def test_default_predictors_without_support_raise(self):
        class Bare(OnlinePredictor):
            def observe(self, value):
                return value

            def reset(self):
                pass

        with pytest.raises(NotImplementedError, match="Bare"):
            Bare().state_dict()
        with pytest.raises(NotImplementedError):
            Bare().load_state_dict({})

    def test_registry_core_predictors_checkpointable(self):
        for name in ("wcma", "ewma"):
            p = make_predictor(name, 48)
            p.observe(10.0)
            q = make_predictor(name, 48)
            q.load_state_dict(p.state_dict())
            assert q.observe(20.0) == make_and_replay(name, [10.0]).observe(20.0)


def make_and_replay(name, values):
    p = make_predictor(name, 48)
    for v in values:
        p.observe(v)
    return p


class TestStateDigest:
    def test_insertion_order_invariant(self):
        a = {"x": 1, "y": {"p": 2.0, "q": 3.0}}
        b = {"y": {"q": 3.0, "p": 2.0}, "x": 1}
        assert state_digest(a) == state_digest(b)

    def test_distinct_states_distinct_digests(self):
        p = PREDICTORS["ewma"]()
        d0 = state_digest(p.state_dict())
        p.observe(100.0)
        assert state_digest(p.state_dict()) != d0

    def test_digest_is_short_hex(self):
        d = state_digest({"a": 1})
        assert len(d) == 16
        int(d, 16)  # parses as hex


class TestStateStore:
    def test_round_trip(self, tmp_path):
        store = StateStore(tmp_path / "state")
        p = PREDICTORS["wcma"]()
        for v in sample_stream()[:130]:
            p.observe(float(v))
        state = {"predictor": p.state_dict(), "observed": 130}
        digest = store.save("SPMD", "wcma", state)
        assert digest == state_digest(state)
        loaded = store.load("SPMD", "wcma")
        assert state_digest(loaded) == digest
        q = PREDICTORS["wcma"]()
        q.load_state_dict(loaded["predictor"])
        assert q.observe(321.0) == p.observe(321.0)

    def test_missing_returns_none(self, tmp_path):
        assert StateStore(tmp_path).load("SPMD", "wcma") is None

    def test_identity_mismatch_rejected(self, tmp_path):
        store = StateStore(tmp_path)
        store.save("SPMD", "wcma", {"observed": 1})
        # Same file name would be different (site, predictor) pairs; a
        # hand-copied file must still refuse to load.
        path = store.path_for("ECSU", "wcma")
        path.write_bytes(store.path_for("SPMD", "wcma").read_bytes())
        with pytest.raises(StateError, match="SPMD"):
            store.load("ECSU", "wcma")

    def test_version_and_format_validated(self, tmp_path):
        store = StateStore(tmp_path)
        store.save("SPMD", "wcma", {"observed": 1})
        path = store.path_for("SPMD", "wcma")

        env = pickle.loads(path.read_bytes())
        env["version"] = STATE_VERSION + 1
        path.write_bytes(pickle.dumps(env))
        with pytest.raises(StateError, match="version"):
            store.load("SPMD", "wcma")

        env["version"] = STATE_VERSION
        env["format"] = "something else"
        path.write_bytes(pickle.dumps(env))
        with pytest.raises(StateError, match=STATE_FORMAT):
            store.load("SPMD", "wcma")

        path.write_bytes(b"not a pickle")
        with pytest.raises(StateError, match="cannot read"):
            store.load("SPMD", "wcma")

    def test_atomic_overwrite_keeps_old_state_on_failure(self, tmp_path):
        store = StateStore(tmp_path)
        store.save("SPMD", "wcma", {"observed": 7})

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            store.save("SPMD", "wcma", {"observed": Unpicklable()})
        # The failed write neither corrupted the file nor left litter.
        assert store.load("SPMD", "wcma") == {"observed": 7}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_entries_round_trip_names(self, tmp_path):
        store = StateStore(tmp_path)
        store.save("SPMD", "wcma", {"observed": 1})
        store.save("MY SITE/2024", "previous-day", {"observed": 2})
        (tmp_path / "junk.state.pkl").write_bytes(b"zzz")  # skipped quietly
        assert sorted(store.entries()) == [
            ("MY SITE/2024", "previous-day"),
            ("SPMD", "wcma"),
        ]
