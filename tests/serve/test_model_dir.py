"""Artifact-backed serving: ForecastService(model_dir=...).

The serve half of the train/serve split: a site whose ``(dataset,
predictor)`` pair has a stored artifact registers *frozen* (the trained
weights serve, no online refits); sites without one fall back to the
plain online factory; a schema-stale artifact is a loud registration
error, never a silent mis-prediction.
"""

import pickle

import pytest

from repro.learn.artifact import ArtifactStore
from repro.learn.features import FEATURE_SCHEMA_VERSION
from repro.learn.models import TrainingConfig
from repro.learn.training import fit_artifact
from repro.serve import ForecastService
from repro.solar.datasets import build_dataset


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    """A store holding one trained PFCI ridge artifact."""
    root = tmp_path_factory.mktemp("models")
    trace = build_dataset("PFCI", n_days=12, seed=0)
    artifact = fit_artifact(
        trace, 48, model="ridge", site="PFCI",
        training=TrainingConfig(min_train_days=4),
    )
    ArtifactStore(root).save(artifact)
    return root


class TestFrozenRegistration:
    def test_register_serves_artifact(self, model_dir):
        svc = ForecastService(n_slots=48, predictor="ridge", model_dir=model_dir)
        reg = svc.handle({"op": "register", "site": "PFCI"})
        assert reg["ok"] and reg["frozen"] is True
        assert len(reg["model_digest"]) == 16
        node = svc._nodes["PFCI"]
        assert node.predictor.frozen and node.predictor.is_fitted

    def test_digest_matches_store(self, model_dir):
        stored = ArtifactStore(model_dir).load("PFCI", "ridge")
        svc = ForecastService(n_slots=48, predictor="ridge", model_dir=model_dir)
        reg = svc.handle({"op": "register", "site": "PFCI"})
        assert reg["model_digest"] == stored.digest()

    def test_logical_site_resolves_via_dataset(self, model_dir):
        # Artifacts key on the *dataset*, so a named node backed by
        # PFCI data picks up the PFCI model.
        svc = ForecastService(n_slots=48, predictor="ridge", model_dir=model_dir)
        reg = svc.handle(
            {"op": "register", "site": "node-17", "dataset": "PFCI"}
        )
        assert reg["ok"] and reg.get("frozen") is True

    def test_observe_forecast_lifecycle(self, model_dir):
        svc = ForecastService(n_slots=48, predictor="ridge", model_dir=model_dir)
        svc.handle({"op": "register", "site": "PFCI"})
        obs = svc.handle({"op": "observe", "site": "PFCI", "value": 120.0})
        assert obs["ok"] and obs["prediction"] >= 0.0
        fc = svc.handle({"op": "forecast", "site": "PFCI"})
        assert fc["ok"] and fc["prediction"] == obs["prediction"]


class TestFallback:
    def test_site_without_artifact_runs_online(self, model_dir):
        svc = ForecastService(n_slots=48, predictor="ridge", model_dir=model_dir)
        reg = svc.handle({"op": "register", "site": "HSU"})
        assert reg["ok"] and "frozen" not in reg and "model_digest" not in reg
        node = svc._nodes["HSU"]
        assert not node.predictor.frozen

    def test_no_model_dir_is_plain_online(self):
        svc = ForecastService(n_slots=48, predictor="ridge")
        reg = svc.handle({"op": "register", "site": "PFCI"})
        assert reg["ok"] and "frozen" not in reg

    def test_stats_reports_artifact_backing(self, model_dir):
        backed = ForecastService(n_slots=48, predictor="ridge", model_dir=model_dir)
        plain = ForecastService(n_slots=48, predictor="ridge")
        assert backed.handle({"op": "stats"})["artifact_backed"] is True
        assert plain.handle({"op": "stats"})["artifact_backed"] is False


class TestSchemaRejection:
    def test_stale_schema_fails_registration_loudly(self, model_dir, tmp_path):
        store = ArtifactStore(tmp_path)
        src = ArtifactStore(model_dir).path_for("PFCI", "ridge")
        dst = store.path_for("PFCI", "ridge")
        dst.parent.mkdir(parents=True, exist_ok=True)
        with open(src, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["feature_schema"] = FEATURE_SCHEMA_VERSION + 5
        with open(dst, "wb") as handle:
            pickle.dump(envelope, handle)

        svc = ForecastService(n_slots=48, predictor="ridge", model_dir=tmp_path)
        reg = svc.handle({"op": "register", "site": "PFCI"})
        assert reg["ok"] is False
        assert str(FEATURE_SCHEMA_VERSION + 5) in reg["error"]
        assert str(FEATURE_SCHEMA_VERSION) in reg["error"]
        # The failed registration must not leave a half-built node.
        assert "PFCI" not in svc._nodes
