"""Tests for the Q15 fixed-point WCMA implementation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.wcma import WCMAParams, WCMAPredictor
from repro.hardware.fixedpoint import FixedPointWCMA, Q15, Q15_MAX
from repro.metrics.evaluate import evaluate_predictor


class TestQ15Helpers:
    def test_round_trip_exact_codes(self):
        for code in (0, 1, 16384, Q15_MAX):
            assert Q15.from_float(Q15.to_float(code)) == code

    def test_saturation(self):
        assert Q15.from_float(2.0) == Q15_MAX
        assert Q15.from_float(-1.0) == 0

    def test_mul(self):
        half = Q15.from_float(0.5)
        quarter = Q15.mul(half, half)
        assert Q15.to_float(quarter) == pytest.approx(0.25, abs=1e-4)

    def test_div(self):
        q = Q15.div(Q15.from_float(0.25), Q15.from_float(0.5))
        assert Q15.to_float(q) == pytest.approx(0.5, abs=1e-4)

    def test_div_by_zero_saturates(self):
        assert Q15.div(100, 0) == Q15_MAX

    @given(st.floats(0.0, 1.0))
    def test_quantisation_error_bounded(self, value):
        code = Q15.from_float(value)
        assert abs(Q15.to_float(code) - value) <= 1.0 / (1 << 15)


class TestFixedPointWCMA:
    def test_quantise_dequantise(self):
        predictor = FixedPointWCMA(48, WCMAParams(0.7, 5, 2), full_scale_watts=1500)
        for watts in (0.0, 750.0, 1500.0):
            code = predictor.quantise(watts)
            assert predictor.dequantise(code) == pytest.approx(watts, abs=0.05)

    def test_saturates_above_full_scale(self):
        predictor = FixedPointWCMA(48, WCMAParams(0.7, 5, 2), full_scale_watts=1000)
        assert predictor.quantise(5000.0) == Q15_MAX

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPointWCMA(0, WCMAParams(0.7, 5, 2))
        with pytest.raises(ValueError):
            FixedPointWCMA(48, WCMAParams(0.7, 5, 2), full_scale_watts=0.0)
        with pytest.raises(ValueError):
            FixedPointWCMA(48, WCMAParams(0.7, 5, 2), eta_floor_fraction=1.0)
        predictor = FixedPointWCMA(48, WCMAParams(0.7, 5, 2))
        with pytest.raises(ValueError):
            predictor.observe(-1.0)

    def test_tracks_float_closely_per_step(self, repeating_day_trace):
        """On noiseless repeating days, Q15 predictions stay within a
        fraction of a percent of full scale from the float ones."""
        params = WCMAParams(0.7, 5, 2)
        flt = WCMAPredictor(48, params)
        q15 = FixedPointWCMA(48, params, full_scale_watts=1000.0)
        starts = repeating_day_trace.as_days()[:, ::6].reshape(-1)
        worst = 0.0
        for value in starts:
            worst = max(worst, abs(flt.observe(float(value)) - q15.observe(float(value))))
        assert worst < 5.0  # 0.5 % of the 1000 W full scale

    def test_mape_close_to_float(self, hsu_trace):
        params = WCMAParams(0.7, 7, 2)
        flt = evaluate_predictor(WCMAPredictor(48, params), hsu_trace, 48)
        q15 = evaluate_predictor(FixedPointWCMA(48, params), hsu_trace, 48)
        assert q15.mape == pytest.approx(flt.mape, abs=0.005)

    def test_reset(self):
        predictor = FixedPointWCMA(2, WCMAParams(0.5, 2, 1))
        seq = [10.0, 400.0] * 5
        first = [predictor.observe(v) for v in seq]
        predictor.reset()
        second = [predictor.observe(v) for v in seq]
        assert first == second

    def test_predictions_bounded_by_full_scale(self, hsu_trace):
        predictor = FixedPointWCMA(48, WCMAParams(0.3, 5, 3), full_scale_watts=1200)
        starts = hsu_trace.as_days()[:10, :: 30].reshape(-1)
        for value in starts:
            assert 0.0 <= predictor.observe(float(value)) <= 1200.0
