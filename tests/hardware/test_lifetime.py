"""Tests for battery-lifetime and energy-budget planning."""

import pytest

from repro.hardware.lifetime import (
    battery_lifetime_days,
    node_daily_energy,
    required_panel_area,
    sampling_rate_for_budget,
)
from repro.hardware.mcu import MSP430F1611
from repro.management.consumer import DutyCycledLoad

LOAD = DutyCycledLoad(
    active_power_watts=60e-3, sleep_power_watts=30e-6, min_duty=0.0
)


class TestNodeDailyEnergy:
    def test_zero_duty_is_management_plus_sleep_load(self):
        energy = node_daily_energy(48, 0.0, load=LOAD)
        management = MSP430F1611.sleep_energy_per_day() + 2880e-6
        load_sleep = 30e-6 * 86_400
        assert energy == pytest.approx(management + load_sleep, rel=1e-6)

    def test_duty_dominates_at_high_duty(self):
        low = node_daily_energy(48, 0.01, load=LOAD)
        high = node_daily_energy(48, 0.5, load=LOAD)
        assert high > 10 * low

    def test_explicit_prediction_parameters(self):
        default = node_daily_energy(48, 0.1, load=LOAD)
        cheap = node_daily_energy(48, 0.1, load=LOAD, k_param=1, alpha=0.7)
        assert cheap < default  # K=1 costs 3.6 uJ < the typical 5 uJ

    def test_validation(self):
        with pytest.raises(ValueError):
            node_daily_energy(48, 1.5)


class TestBatteryLifetime:
    def test_aa_pair_at_low_duty(self):
        # 64.8 kJ pair at 1% duty of a 60 mW load: load ~82 J/day
        # dominates the 0.36 J/day management -> months of life.
        days = battery_lifetime_days(64_800.0, 48, 0.01, load=LOAD)
        assert 300 < days < 1200

    def test_scales_linearly_with_capacity(self):
        one = battery_lifetime_days(1000.0, 48, 0.1, load=LOAD)
        two = battery_lifetime_days(2000.0, 48, 0.1, load=LOAD)
        assert two == pytest.approx(2 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            battery_lifetime_days(0.0, 48, 0.1)


class TestPanelSizing:
    def test_reasonable_area_for_mote(self):
        # 5 kWh/m2/day site, 10% duty of the 60 mW load.
        area = required_panel_area(48, 0.10, 5000.0, load=LOAD)
        assert 0.0002 < area < 0.05  # between 2 cm^2 and 500 cm^2

    def test_margin_scales_area(self):
        base = required_panel_area(48, 0.1, 5000.0, load=LOAD, margin=1.0)
        double = required_panel_area(48, 0.1, 5000.0, load=LOAD, margin=2.0)
        assert double == pytest.approx(2 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_panel_area(48, 0.1, 0.0)
        with pytest.raises(ValueError):
            required_panel_area(48, 0.1, 5000.0, margin=0.5)


class TestSamplingRateForBudget:
    def test_generous_harvest_allows_n288(self):
        # Fig. 6 arithmetic: N=288 costs 17.28 mJ/day.
        assert sampling_rate_for_budget(10.0, overhead_budget=0.01) == 288

    def test_tight_harvest_forces_small_n(self):
        # 0.2 J/day at 1% budget -> 2 mJ/day: only N=24 (1.44 mJ) fits.
        assert sampling_rate_for_budget(0.2, overhead_budget=0.01) == 24

    def test_impossible_budget_returns_none(self):
        assert sampling_rate_for_budget(0.01, overhead_budget=0.01) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            sampling_rate_for_budget(0.0)
        with pytest.raises(ValueError):
            sampling_rate_for_budget(1.0, overhead_budget=0.0)
