"""Tests for the MCU, ADC and energy accounting models (Table IV, Fig. 6)."""

import pytest

from repro.hardware.adc import SamplingSequence
from repro.hardware.cycles import (
    ALPHA_ZERO_SAVING_CYCLES,
    FLOAT_COSTS,
    PER_K_CYCLES,
    Q15_COSTS,
    arithmetic_cycles,
    history_memory_bytes,
    prediction_cycles,
)
from repro.hardware.energy import (
    ADC_EVENT_ENERGY_J,
    EnergyBudget,
    adc_energy_per_sample,
    daily_energy,
    overhead_fraction,
    prediction_energy,
)
from repro.hardware.mcu import MCUPowerModel, MSP430F1611


class TestMCU:
    def test_sleep_calibrated_to_paper(self):
        assert MSP430F1611.sleep_energy_per_day() == pytest.approx(356e-3)

    def test_sleep_current_rounds_to_datasheet(self):
        assert MSP430F1611.sleep_current_amps == pytest.approx(1.4e-6, abs=0.05e-6)

    def test_energy_per_cycle(self):
        # 3 V * 2.5 mA / 5 MHz = 1.5 nJ.
        assert MSP430F1611.energy_per_cycle_joules == pytest.approx(1.5e-9)

    def test_active_energy(self):
        assert MSP430F1611.active_energy(1000) == pytest.approx(1.5e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MCUPowerModel("x", 0.0, 1e6, 1e-3, 1e-6, 1e-3, 1e-3)
        with pytest.raises(ValueError):
            MSP430F1611.active_energy(-1)
        with pytest.raises(ValueError):
            MSP430F1611.sleep_energy(-1.0)


class TestSamplingSequence:
    def test_total_close_to_measured(self):
        seq = SamplingSequence()
        assert seq.total_energy() == pytest.approx(55e-6, rel=0.05)

    def test_vref_dominates(self):
        seq = SamplingSequence()
        assert seq.vref_energy() > 10 * seq.conversion_energy()
        assert seq.vref_energy() > 10 * seq.cpu_overhead_energy()

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingSequence(vref_settle_seconds=-1.0)


class TestPredictionCycles:
    def test_linear_in_k(self):
        assert (
            prediction_cycles(5) - prediction_cycles(4) == PER_K_CYCLES
        )

    def test_alpha_zero_saving(self):
        assert (
            prediction_cycles(7) - prediction_cycles(7, alpha_zero=True)
            == ALPHA_ZERO_SAVING_CYCLES
        )

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            prediction_cycles(0)

    def test_q15_cheaper_than_float(self):
        assert arithmetic_cycles(3, Q15_COSTS) < arithmetic_cycles(3, FLOAT_COSTS) / 4


class TestTableIVAnchors:
    """The hardware model must reproduce every measured number in Table IV."""

    def test_adc_55uj(self):
        assert adc_energy_per_sample() == 55e-6

    def test_prediction_k1_a07(self):
        total = (ADC_EVENT_ENERGY_J + prediction_energy(1, 0.7)) * 1e6
        assert total == pytest.approx(58.6, abs=0.05)

    def test_prediction_k7_a07(self):
        total = (ADC_EVENT_ENERGY_J + prediction_energy(7, 0.7)) * 1e6
        assert total == pytest.approx(63.4, abs=0.05)

    def test_prediction_k7_a00(self):
        total = (ADC_EVENT_ENERGY_J + prediction_energy(7, 0.0)) * 1e6
        assert total == pytest.approx(61.5, abs=0.05)

    def test_daily_sampling_2640uj(self):
        assert daily_energy(48, include_prediction=False) * 1e6 == pytest.approx(2640)

    def test_daily_total_2880uj(self):
        assert daily_energy(48) * 1e6 == pytest.approx(2880)

    def test_validation(self):
        with pytest.raises(ValueError):
            prediction_energy(1, 1.5)
        with pytest.raises(ValueError):
            daily_energy(0)
        with pytest.raises(ValueError):
            daily_energy(48, k_param=3)  # alpha missing


class TestFig6:
    @pytest.mark.parametrize(
        "n,expected_percent",
        [(288, 4.85), (96, 1.62), (72, 1.21), (48, 0.81), (24, 0.40)],
    )
    def test_overhead_matches_paper(self, n, expected_percent):
        assert overhead_fraction(n) * 100 == pytest.approx(expected_percent, abs=0.01)

    def test_monotone_in_n(self):
        values = [overhead_fraction(n) for n in (24, 48, 72, 96, 288)]
        assert values == sorted(values)


class TestEnergyBudget:
    def test_for_configuration(self):
        budget = EnergyBudget.for_configuration(48, 2, 0.7)
        assert budget.total_per_day == pytest.approx(
            48 * (budget.adc_event + budget.prediction_event)
        )
        assert budget.overhead == pytest.approx(
            budget.total_per_day / budget.sleep_per_day
        )
        assert budget.sampling_per_day < budget.total_per_day


class TestMemory:
    def test_history_memory(self):
        # D=20, N=96, 2 B/sample: 3840 B history + 384 B sums + 2 B ratios.
        assert history_memory_bytes(20, 96, k_param=1) == 3840 + 384 + 2

    def test_guideline_d10_fits_msp430_ram(self):
        assert history_memory_bytes(10, 96, k_param=2) < 10 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            history_memory_bytes(0, 48)
        with pytest.raises(ValueError):
            history_memory_bytes(10, 48, bytes_per_sample=0)
