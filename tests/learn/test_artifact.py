"""Tests for ModelArtifact / ArtifactStore (repro.learn.artifact)."""

import pickle

import numpy as np
import pytest

from repro.learn.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ArtifactError,
    ArtifactStore,
    ModelArtifact,
)
from repro.learn.features import FEATURE_SCHEMA_VERSION, FeatureConfig
from repro.learn.models import TrainingConfig, fit_ridge


def _make_artifact(site="PFCI", model="ridge", n_slots=8, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(40, 3))
    y = rng.normal(size=40)
    return ModelArtifact(
        site=site,
        model=model,
        n_slots=n_slots,
        feature_schema=FEATURE_SCHEMA_VERSION,
        feature_config=FeatureConfig().to_dict(),
        training=TrainingConfig().to_dict(),
        params=fit_ridge(X, y, lam=1e-3),
    )


class TestModelArtifact:
    def test_round_trip_preserves_digest(self):
        artifact = _make_artifact()
        clone = ModelArtifact.from_dict(artifact.to_dict())
        assert clone.digest() == artifact.digest()

    def test_pickle_round_trip_preserves_digest(self):
        artifact = _make_artifact()
        clone = pickle.loads(pickle.dumps(artifact.to_dict()))
        assert ModelArtifact.from_dict(clone).digest() == artifact.digest()

    def test_rejects_unknown_model_kind(self):
        with pytest.raises(ValueError, match="unknown model kind"):
            _make_artifact(model="forest")

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="n_slots"):
            _make_artifact(n_slots=0)

    def test_digest_tracks_content(self):
        a = _make_artifact(seed=0)
        b = _make_artifact(seed=1)
        assert a.digest() != b.digest()


class TestArtifactStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifact = _make_artifact()
        digest = store.save(artifact)
        loaded = store.load("PFCI", "ridge")
        assert loaded is not None
        assert loaded.digest() == digest == artifact.digest()
        np.testing.assert_array_equal(
            loaded.params["weights"], artifact.params["weights"]
        )

    def test_missing_artifact_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("PFCI", "ridge") is None

    def test_schema_mismatch_is_loud_and_names_both_versions(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_make_artifact())
        path = store.path_for("PFCI", "ridge")
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["feature_schema"] = FEATURE_SCHEMA_VERSION + 7
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(ArtifactError) as err:
            store.load("PFCI", "ridge")
        message = str(err.value)
        assert str(FEATURE_SCHEMA_VERSION + 7) in message
        assert str(FEATURE_SCHEMA_VERSION) in message

    def test_format_version_mismatch_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_make_artifact())
        path = store.path_for("PFCI", "ridge")
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["version"] = ARTIFACT_VERSION + 1
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(ArtifactError, match="artifact-format version"):
            store.load("PFCI", "ridge")

    def test_foreign_pickle_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.path_for("PFCI", "ridge")
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump({"whatever": 1}, handle)
        with pytest.raises(ArtifactError, match=ARTIFACT_FORMAT):
            store.load("PFCI", "ridge")

    def test_site_model_mismatch_rejected(self, tmp_path):
        # A file renamed onto another pair's slot must not load.
        store = ArtifactStore(tmp_path)
        store.save(_make_artifact(site="PFCI"))
        src = store.path_for("PFCI", "ridge")
        dst = store.path_for("HSU", "ridge")
        dst.write_bytes(src.read_bytes())
        with pytest.raises(ArtifactError, match="expected"):
            store.load("HSU", "ridge")

    def test_entries_lists_pairs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(_make_artifact(site="PFCI", model="ridge"))
        store.save(_make_artifact(site="HSU", model="ridge"))
        assert sorted(store.entries()) == [("HSU", "ridge"), ("PFCI", "ridge")]

    def test_entries_empty_dir(self, tmp_path):
        store = ArtifactStore(tmp_path / "nope")
        assert list(store.entries()) == []
