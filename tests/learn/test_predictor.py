"""Tests for LearnedKernel / LearnedPredictor (repro.learn.predictor)."""

import numpy as np
import pytest

from repro.learn.artifact import ModelArtifact
from repro.learn.features import FEATURE_SCHEMA_VERSION
from repro.learn.models import TrainingConfig
from repro.learn.predictor import LearnedKernel, LearnedPredictor
from repro.learn.training import fit_artifact

# Small, fast config used throughout: first fit after 2 days, refit
# every 2 days, tiny GBM.
FAST = TrainingConfig(
    min_train_days=2,
    refit_days=2,
    window_days=5,
    gbm_rounds=8,
    gbm_thresholds=7,
)


def _sine_values(n_slots, n_days, amplitude=600.0):
    t = np.arange(n_slots * n_days)
    day = np.sin(np.pi * ((t % n_slots) / n_slots)) ** 2
    return amplitude * day


class TestConstruction:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            LearnedKernel(0)
        with pytest.raises(ValueError):
            LearnedKernel(8, batch_size=0)

    def test_bad_feedback_rejected(self):
        with pytest.raises(ValueError, match="feedback"):
            LearnedKernel(8, feedback="psychic")

    def test_bad_fallback_alpha_rejected(self):
        with pytest.raises(ValueError, match="fallback_alpha"):
            LearnedKernel(8, fallback_alpha=1.5)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model kind"):
            LearnedKernel(8, model="forest")


class TestOnlineMode:
    def test_fallback_before_first_fit(self):
        kernel = LearnedKernel(6, model="ridge", training=FAST)
        assert not kernel.is_fitted
        out = kernel.observe(np.array([100.0]))
        assert out.shape == (1,)
        assert out[0] >= 0.0
        assert not kernel.is_fitted

    def test_refit_schedule(self):
        n_slots = 6
        kernel = LearnedKernel(n_slots, model="ridge", training=FAST)
        values = _sine_values(n_slots, 7)
        fits_by_day = []
        for t, v in enumerate(values):
            kernel.observe(np.array([v]))
            if (t + 1) % n_slots == 0:
                fits_by_day.append(kernel.fit_count)
        # First fit at day min_train_days=2, then every refit_days=2.
        assert fits_by_day == [0, 1, 1, 2, 2, 3, 3]
        assert kernel.is_fitted

    def test_predictions_non_negative_and_finite(self, rng):
        kernel = LearnedKernel(6, model="gbm", training=FAST)
        values = rng.uniform(0, 800, size=6 * 8)
        preds = [kernel.observe(np.array([v]))[0] for v in values]
        assert np.isfinite(preds).all()
        assert min(preds) >= 0.0

    def test_reset_forgets_fit(self):
        n_slots = 6
        kernel = LearnedKernel(n_slots, model="ridge", training=FAST)
        for v in _sine_values(n_slots, 4):
            kernel.observe(np.array([v]))
        assert kernel.is_fitted
        kernel.reset()
        assert not kernel.is_fitted
        assert kernel.fit_count == 0


class TestVectorParity:
    @pytest.mark.parametrize("model", ["ridge", "gbm"])
    def test_kernel_matches_scalar_predictors(self, model, rng):
        """A B=3 kernel must reproduce 3 independent scalar runs exactly."""
        n_slots, n_days, B = 6, 7, 3
        values = rng.uniform(0, 900, size=(n_slots * n_days, B))
        kernel = LearnedKernel(n_slots, batch_size=B, model=model, training=FAST)
        scalars = [
            LearnedPredictor(n_slots, model=model, training=FAST)
            for _ in range(B)
        ]
        for row in values:
            batch = kernel.observe(row.copy())
            singles = [p.observe(row[b]) for b, p in enumerate(scalars)]
            np.testing.assert_allclose(batch, singles, rtol=0, atol=1e-9)

    def test_parity_with_slot_mean_feedback(self, rng):
        n_slots, n_days, B = 6, 6, 2
        values = rng.uniform(0, 900, size=(n_slots * n_days, B))
        means = rng.uniform(0, 900, size=(n_slots * n_days, B))
        kernel = LearnedKernel(n_slots, batch_size=B, model="ridge", training=FAST)
        scalars = [
            LearnedPredictor(n_slots, model="ridge", training=FAST)
            for _ in range(B)
        ]
        assert kernel.uses_slot_mean_feedback
        for t, row in enumerate(values):
            if t > 0:
                kernel.provide_slot_mean(means[t - 1])
                for b, p in enumerate(scalars):
                    p.provide_slot_mean(means[t - 1][b])
            batch = kernel.observe(row.copy())
            singles = [p.observe(row[b]) for b, p in enumerate(scalars)]
            np.testing.assert_allclose(batch, singles, rtol=0, atol=1e-9)


class TestFrozenMode:
    @pytest.fixture(scope="class")
    def artifact(self, pfci_trace):
        head = pfci_trace.select_days(0, 10)
        return fit_artifact(
            head, 48, model="ridge", site="PFCI",
            training=TrainingConfig(min_train_days=2),
        )

    def test_frozen_serves_artifact_weights(self, artifact):
        predictor = LearnedPredictor(48, artifact=artifact)
        assert predictor.frozen
        assert predictor.is_fitted
        assert predictor.model == "ridge"

    def test_frozen_never_refits(self, artifact, rng):
        predictor = LearnedPredictor(48, artifact=artifact)
        for v in rng.uniform(0, 900, size=48 * 10):
            predictor.observe(v)
        assert predictor.fit_count == 0

    def test_reset_keeps_weights(self, artifact):
        predictor = LearnedPredictor(48, artifact=artifact)
        predictor.reset()
        assert predictor.is_fitted
        assert predictor.frozen

    def test_schema_mismatch_is_loud(self, artifact):
        stale = ModelArtifact.from_dict(
            {**artifact.to_dict(), "feature_schema": FEATURE_SCHEMA_VERSION + 3}
        )
        with pytest.raises(ValueError) as err:
            LearnedPredictor(48, artifact=stale)
        message = str(err.value)
        assert str(FEATURE_SCHEMA_VERSION + 3) in message
        assert str(FEATURE_SCHEMA_VERSION) in message

    def test_geometry_mismatch_rejected(self, artifact):
        with pytest.raises(ValueError, match="N=48"):
            LearnedPredictor(24, artifact=artifact)

    def test_model_kind_mismatch_rejected(self, artifact):
        with pytest.raises(ValueError, match="ridge"):
            LearnedPredictor(48, model="gbm", artifact=artifact)


class TestStateDict:
    @pytest.mark.parametrize("model", ["ridge", "gbm"])
    def test_round_trip_continuation(self, model, rng):
        n_slots = 6
        values = rng.uniform(0, 900, size=n_slots * 8)
        full = LearnedPredictor(n_slots, model=model, training=FAST)
        expected = [full.observe(v) for v in values]

        first = LearnedPredictor(n_slots, model=model, training=FAST)
        cut = 29
        for v in values[:cut]:
            first.observe(v)
        snapshot = first.state_dict()

        resumed = LearnedPredictor(n_slots, model=model, training=FAST)
        resumed.load_state_dict(snapshot)
        tail = [resumed.observe(v) for v in values[cut:]]
        np.testing.assert_allclose(tail, expected[cut:], rtol=0, atol=1e-9)

    def test_tampered_schema_is_loud(self):
        predictor = LearnedPredictor(6, model="ridge", training=FAST)
        state = predictor.state_dict()
        state["feature_schema"] = FEATURE_SCHEMA_VERSION + 9
        with pytest.raises(ValueError) as err:
            predictor.load_state_dict(state)
        message = str(err.value)
        assert str(FEATURE_SCHEMA_VERSION + 9) in message
        assert str(FEATURE_SCHEMA_VERSION) in message

    def test_wrong_kind_rejected(self):
        predictor = LearnedPredictor(6, model="ridge", training=FAST)
        with pytest.raises(ValueError, match="learned"):
            predictor.load_state_dict({"kind": "wcma"})

    def test_config_mismatch_rejected(self):
        a = LearnedPredictor(6, model="ridge", training=FAST)
        b = LearnedPredictor(6, model="ridge")  # default TrainingConfig
        with pytest.raises(ValueError, match="training config"):
            b.load_state_dict(a.state_dict())
