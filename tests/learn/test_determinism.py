"""Cross-process training determinism (issue satellite).

Training must be a pure function of ``(trace, config, seed)``: two
fresh interpreters with *different* ``PYTHONHASHSEED`` values must
produce byte-identical artifact files and equal content digests.  Dict
iteration order is the classic leak this catches -- any fit path that
walks an unordered set of features or keys will diverge here.

The fit ``engine`` joins the matrix: the batched stacked kernels and
the frozen scalar reference loop must produce byte-identical artifacts
in fresh interpreters too, so the fast path can never fork artifact
provenance.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_SCRIPT = """
import hashlib, json, sys
from repro.learn.artifact import ArtifactStore
from repro.learn.models import TrainingConfig
from repro.learn.training import fit_artifact
from repro.experiments.common import trace_for

out_dir, model, engine = sys.argv[1], sys.argv[2], sys.argv[3]
trace = trace_for("PFCI", 16)
artifact = fit_artifact(
    trace, 24, model=model, site="PFCI",
    training=TrainingConfig(min_train_days=4, gbm_rounds=12, seed=7),
    engine=engine,
)
store = ArtifactStore(out_dir)
digest = store.save(artifact)
path = store.path_for("PFCI", model)
print(json.dumps({
    "digest": digest,
    "file_sha256": hashlib.sha256(path.read_bytes()).hexdigest(),
}))
"""


def _train_in_subprocess(
    tmp_path: Path, model: str, hash_seed: str, engine: str = "batched"
) -> dict:
    out_dir = tmp_path / f"hs{hash_seed}-{model}-{engine}"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(out_dir), model, engine],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.mark.parametrize("model", ["ridge", "gbm"])
def test_training_is_hashseed_invariant(tmp_path, model):
    a = _train_in_subprocess(tmp_path, model, hash_seed="0")
    b = _train_in_subprocess(tmp_path, model, hash_seed="42")
    assert a["digest"] == b["digest"]
    assert a["file_sha256"] == b["file_sha256"]


@pytest.mark.parametrize("model", ["ridge", "gbm"])
def test_batched_engine_matches_loop_across_hashseeds(tmp_path, model):
    """The batched fast path and the frozen scalar reference produce one
    artifact: every (engine, PYTHONHASHSEED) combination must agree on
    both the content digest and the on-disk bytes."""
    results = [
        _train_in_subprocess(tmp_path, model, hash_seed, engine)
        for engine in ("batched", "loop")
        for hash_seed in ("0", "42")
    ]
    assert len({r["digest"] for r in results}) == 1
    assert len({r["file_sha256"] for r in results}) == 1
