"""Bitwise parity pins for the learned-tier fast path.

The batched training kernels (``fit_ridge_batch`` / ``fit_gbm_batch``),
the vectorized scalar ``fit_gbm``, and the kernel's ``engine="batched"``
refit dispatch must reproduce the frozen PR 9 scalar loops in
:mod:`repro.learn.reference` *bitwise* -- GBM split selection is an
argmax over gains, so any last-ulp drift can flip a split and break the
byte-pinned robustness goldens.  Every assertion here is exact
equality, not a tolerance.
"""

import numpy as np
import pytest

from repro.learn import models as M
from repro.learn.models import (
    TrainingConfig,
    fit_gbm,
    fit_gbm_batch,
    fit_model_batch,
    fit_ridge,
    fit_ridge_batch,
    predict_model,
    score_stumps,
    unstack_params,
)
from repro.learn.predictor import REFIT_ENGINES, LearnedKernel, LearnedPredictor
from repro.learn.reference import (
    fit_gbm_reference,
    fit_model_reference,
    fit_ridge_reference,
)

FAST = TrainingConfig(
    min_train_days=2,
    refit_days=2,
    window_days=5,
    gbm_rounds=10,
    gbm_thresholds=7,
)


def _assert_params_equal(expected: dict, actual: dict) -> None:
    assert set(expected) == set(actual)
    for key in expected:
        a, b = expected[key], actual[key]
        if isinstance(a, (int, float, str)):
            assert a == b, key
        else:
            assert np.asarray(a).dtype == np.asarray(b).dtype, key
            assert np.array_equal(a, b), key


def _window(rng, n, B, F=18):
    """A training window with realistic structure: mixed scales, a
    constant column (night slots / unfired flags), some exact ties."""
    X = rng.normal(size=(n, B, F)) * rng.uniform(0.5, 60.0, size=(1, 1, F))
    X[:, :, -1] = 3.25
    X[: n // 3, :, 0] = X[0, :, 0]  # repeated values -> threshold ties
    y = rng.uniform(0.0, 900.0, size=(n, B))
    return X, y


class TestScalarGbmVsReference:
    """The rewritten ``fit_gbm`` (vectorized split search) is bitwise
    the frozen per-feature loop."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize(
        "n,config",
        [
            (60, FAST),
            (96, TrainingConfig(min_train_days=2, window_days=5)),
            (40, TrainingConfig(min_train_days=2, window_days=5, gbm_min_leaf=15)),
            (30, TrainingConfig(min_train_days=2, window_days=5, gbm_subsample=1.0)),
        ],
    )
    def test_bitwise(self, seed, n, config, rng):
        X, y = _window(rng, n, 1)
        expected = fit_gbm_reference(
            X[:, 0, :], y[:, 0], config, np.random.default_rng([seed, 0])
        )
        actual = fit_gbm(
            X[:, 0, :], y[:, 0], config, np.random.default_rng([seed, 0])
        )
        _assert_params_equal(expected, actual)

    def test_bitwise_without_rng(self, rng):
        """``rng=None`` disables subsampling in both implementations."""
        X, y = _window(rng, 50, 1)
        expected = fit_gbm_reference(X[:, 0, :], y[:, 0], FAST, None)
        actual = fit_gbm(X[:, 0, :], y[:, 0], FAST, None)
        _assert_params_equal(expected, actual)

    def test_degenerate_data_neutral_stumps(self):
        """Constant features admit no split: all stumps stay neutral."""
        X = np.full((40, 4), 7.0)
        y = np.linspace(0.0, 1.0, 40)
        expected = fit_gbm_reference(X, y, FAST, None)
        actual = fit_gbm(X, y, FAST, None)
        _assert_params_equal(expected, actual)
        assert not actual["left"].any() and not actual["right"].any()

    def test_ridge_unchanged_vs_reference(self, rng):
        X, y = _window(rng, 70, 1)
        _assert_params_equal(
            fit_ridge_reference(X[:, 0, :], y[:, 0], 1e-3),
            fit_ridge(X[:, 0, :], y[:, 0], 1e-3),
        )


class TestBatchVsPerNode:
    """Stacked ``(n, B, F)`` fits equal ``B`` scalar reference fits."""

    @pytest.mark.parametrize("B", [1, 3, 17])
    @pytest.mark.parametrize("kind", ["ridge", "gbm"])
    def test_bitwise(self, kind, B, rng):
        X, y = _window(rng, 72, B)
        batch = fit_model_batch(
            kind, X, y, FAST, np.random.default_rng([FAST.seed, 0])
        )
        for b in range(B):
            expected = fit_model_reference(
                kind, X[:, b, :], y[:, b],
                FAST, np.random.default_rng([FAST.seed, 0]),
            )
            _assert_params_equal(expected, unstack_params(batch, b))

    def test_gbm_streaming_strategy_bitwise(self, rng, monkeypatch):
        """Both mask-tensor strategies (full-batch and per-node
        F-stacked) produce identical bits, so the budget switch is a
        pure performance knob."""
        X, y = _window(rng, 72, 6)
        seeded = lambda: np.random.default_rng([0, 0])  # noqa: E731
        full = fit_gbm_batch(X, y, FAST, seeded())
        monkeypatch.setattr(M, "GBM_FULL_BATCH_BUDGET", 0)
        streamed = fit_gbm_batch(X, y, FAST, seeded())
        _assert_params_equal(full, streamed)

    def test_mixed_node_deactivation(self, rng):
        """Nodes stop splitting independently: a degenerate column next
        to live ones must not perturb either side."""
        X, y = _window(rng, 48, 3)
        X[:, 1, :] = 5.0  # node 1 has no admissible split
        batch = fit_gbm_batch(X, y, FAST, np.random.default_rng([0, 0]))
        for b in range(3):
            expected = fit_gbm_reference(
                X[:, b, :], y[:, b], FAST, np.random.default_rng([0, 0])
            )
            _assert_params_equal(expected, unstack_params(batch, b))
        assert not batch["left"][1].any()

    def test_unknown_kind_rejected(self, rng):
        X, y = _window(rng, 48, 2)
        with pytest.raises(ValueError, match="unknown model kind"):
            fit_model_batch("forest", X, y, FAST)
        with pytest.raises(ValueError, match="unknown model kind"):
            unstack_params({"kind": "forest"})

    def test_ridge_batch_matches_scalar_fit(self, rng):
        """`fit_ridge` itself (not just the frozen copy) agrees with
        the batch kernel -- the two live paths cannot drift apart."""
        X, y = _window(rng, 60, 4)
        batch = fit_ridge_batch(X, y, 1e-3)
        for b in range(4):
            _assert_params_equal(
                fit_ridge(X[:, b, :], y[:, b], 1e-3), unstack_params(batch, b)
            )


class TestSharedStumpWalk:
    def test_predict_model_uses_shared_kernel(self, rng):
        """Offline GBM scoring is exactly one ``score_stumps`` call."""
        X, y = _window(rng, 64, 1)
        params = fit_gbm(X[:, 0, :], y[:, 0], FAST, np.random.default_rng([0, 0]))
        direct = score_stumps(
            X[:, 0, params["feat"]],
            params["thr"],
            params["left"],
            params["right"],
            params["base"],
            params["learning_rate"],
        )
        assert np.array_equal(predict_model(params, X[:, 0, :]), direct)

    def test_kernel_predict_matches_predict_model(self, rng):
        """The online kernel's stacked stump walk scores a feature row
        exactly like the offline path given the same fitted params."""
        X, y = _window(rng, 64, 1)
        params = fit_gbm(X[:, 0, :], y[:, 0], FAST, np.random.default_rng([0, 0]))
        kernel = LearnedKernel(6, batch_size=1, model="gbm", training=FAST)
        kernel._store_params(0, params)
        feats = np.ascontiguousarray(X[:1, 0, :])
        assert np.array_equal(
            kernel._predict(feats), predict_model(params, feats)
        )


class TestEngineParity:
    """``engine="batched"`` and ``engine="loop"`` kernels emit
    identical predictions over a full online run."""

    @pytest.mark.parametrize("model", ["ridge", "gbm"])
    def test_observe_stream_bitwise(self, model, rng):
        n_slots, n_days, B = 6, 9, 5
        values = rng.uniform(0, 900, size=(n_slots * n_days, B))
        means = rng.uniform(0, 900, size=(n_slots * n_days, B))
        batched = LearnedKernel(
            n_slots, batch_size=B, model=model, training=FAST, engine="batched"
        )
        loop = LearnedKernel(
            n_slots, batch_size=B, model=model, training=FAST, engine="loop"
        )
        assert batched.engine == "batched" and loop.engine == "loop"
        for t, row in enumerate(values):
            if t > 0:
                batched.provide_slot_mean(means[t - 1])
                loop.provide_slot_mean(means[t - 1])
            assert np.array_equal(
                batched.observe(row.copy()), loop.observe(row.copy())
            ), f"engines diverged at t={t}"
        assert batched.fit_count == loop.fit_count > 0

    def test_default_engine_is_batched(self):
        assert LearnedKernel(6, training=FAST).engine == "batched"
        assert REFIT_ENGINES == ("batched", "loop")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="refit engine"):
            LearnedKernel(6, training=FAST, engine="warp")
        with pytest.raises(ValueError, match="refit engine"):
            LearnedPredictor(6, training=FAST, engine="warp")

    def test_engine_not_in_state_dict(self):
        """A perf knob must not fracture checkpoint compatibility."""
        a = LearnedPredictor(6, model="ridge", training=FAST, engine="loop")
        b = LearnedPredictor(6, model="ridge", training=FAST, engine="batched")
        state = a.state_dict()
        assert "engine" not in state
        b.load_state_dict(state)  # must not raise


class TestColumnStackingExact:
    """Strengthen PR 9's 1e-9 vector parity to exact equality: the
    column-stacked robustness slabs rely on bitwise column
    independence to keep the golden matrix byte-stable."""

    @pytest.mark.parametrize("model", ["ridge", "gbm"])
    def test_kernel_columns_equal_scalar_runs(self, model, rng):
        n_slots, n_days, B = 6, 8, 4
        values = rng.uniform(0, 900, size=(n_slots * n_days, B))
        means = rng.uniform(0, 900, size=(n_slots * n_days, B))
        kernel = LearnedKernel(n_slots, batch_size=B, model=model, training=FAST)
        scalars = [
            LearnedPredictor(n_slots, model=model, training=FAST)
            for _ in range(B)
        ]
        for t, row in enumerate(values):
            if t > 0:
                kernel.provide_slot_mean(means[t - 1])
                for b, p in enumerate(scalars):
                    p.provide_slot_mean(means[t - 1][b])
            batch = kernel.observe(row.copy())
            for b, p in enumerate(scalars):
                assert batch[b] == p.observe(row[b]), (model, t, b)


class TestStageSeconds:
    def test_observe_accumulates_stages(self, rng):
        kernel = LearnedKernel(6, model="ridge", training=FAST)
        assert kernel.stage_seconds == {
            "features": 0.0, "refit": 0.0, "predict": 0.0
        }
        for v in rng.uniform(0, 900, size=6 * 4):
            kernel.observe(np.array([v]))
        stages = kernel.stage_seconds
        assert stages["features"] > 0.0
        assert stages["refit"] > 0.0  # min_train_days=2 passed
        assert stages["predict"] > 0.0

    def test_reset_clears_stages(self, rng):
        kernel = LearnedKernel(6, model="ridge", training=FAST)
        for v in rng.uniform(0, 900, size=12):
            kernel.observe(np.array([v]))
        kernel.reset()
        assert kernel.stage_seconds == {
            "features": 0.0, "refit": 0.0, "predict": 0.0
        }
