"""Tests for the incremental feature builder (repro.learn.features)."""

import numpy as np
import pytest

from repro.learn.features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    N_FEATURES,
    FeatureConfig,
    FeatureState,
)


def _drive(state, values_2d):
    """Feed a (T, B) matrix one boundary at a time; return (T, B, F)."""
    out = np.empty((values_2d.shape[0], values_2d.shape[1], N_FEATURES))
    for t, row in enumerate(values_2d):
        out[t] = state.step(np.asarray(row, dtype=float))
    return out


class TestSchema:
    def test_names_match_width(self):
        assert len(FEATURE_NAMES) == N_FEATURES
        assert len(set(FEATURE_NAMES)) == N_FEATURES

    def test_schema_version_is_positive_int(self):
        assert isinstance(FEATURE_SCHEMA_VERSION, int)
        assert FEATURE_SCHEMA_VERSION >= 1

    def test_config_round_trip(self):
        config = FeatureConfig(mu_days=3, rolling_window=4)
        assert FeatureConfig.from_dict(config.to_dict()) == config

    def test_config_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            FeatureConfig.from_dict({"mu_days": 3, "bogus": 1})


class TestStep:
    def test_output_shape_and_finiteness(self, rng):
        state = FeatureState(8, 3, FeatureConfig())
        values = rng.uniform(0, 900, size=(40, 3))
        feats = _drive(state, values)
        assert feats.shape == (40, 3, N_FEATURES)
        assert np.isfinite(feats).all()

    def test_deterministic(self, rng):
        values = rng.uniform(0, 900, size=(30, 2))
        a = _drive(FeatureState(6, 2, FeatureConfig()), values)
        b = _drive(FeatureState(6, 2, FeatureConfig()), values)
        np.testing.assert_array_equal(a, b)

    def test_causal(self, rng):
        """Features up to t must not depend on samples after t."""
        values = rng.uniform(0, 900, size=(36, 1))
        tampered = values.copy()
        tampered[20:] = 1234.5
        a = _drive(FeatureState(6, 1, FeatureConfig()), values)
        b = _drive(FeatureState(6, 1, FeatureConfig()), tampered)
        np.testing.assert_array_equal(a[:20], b[:20])

    def test_spike_flag(self):
        config = FeatureConfig(spike_wm2=1000.0)
        state = FeatureState(4, 1, config)
        idx = FEATURE_NAMES.index("flag_spike")
        normal = state.step(np.array([500.0]))
        spiked = state.step(np.array([5000.0]))
        assert normal[0, idx] == 0.0
        assert spiked[0, idx] == 1.0

    def test_dropout_flag_after_zero_run(self):
        # night_wm2=0 keeps the daylight gate open at every slot with
        # any clear-sky irradiance, so the zero-run length alone decides.
        config = FeatureConfig(dropout_slots=3, night_wm2=0.0)
        state = FeatureState(4, 1, config)
        idx = FEATURE_NAMES.index("flag_dropout")
        state.step(np.array([500.0]))
        flags = [state.step(np.array([0.0]))[0, idx] for _ in range(8)]
        # The flag must stay off before dropout_slots zeros and engage
        # at some daylight boundary once the run is long enough.
        assert max(flags[:2]) == 0.0
        assert max(flags) == 1.0


class TestStateDict:
    def test_round_trip_continuation(self, rng):
        values = rng.uniform(0, 900, size=(50, 2))
        full = FeatureState(5, 2, FeatureConfig())
        expected = _drive(full, values)

        first = FeatureState(5, 2, FeatureConfig())
        _drive(first, values[:23])
        snapshot = first.state_dict()

        resumed = FeatureState(5, 2, FeatureConfig())
        resumed.load_state_dict(snapshot)
        tail = _drive(resumed, values[23:])
        np.testing.assert_array_equal(tail, expected[23:])

    def test_geometry_mismatch_rejected(self):
        state = FeatureState(5, 2, FeatureConfig())
        other = FeatureState(6, 2, FeatureConfig())
        with pytest.raises(ValueError):
            other.load_state_dict(state.state_dict())
