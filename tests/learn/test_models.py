"""Tests for the seeded trainable models (repro.learn.models)."""

import numpy as np
import pytest

from repro.learn.models import (
    MODEL_KINDS,
    TrainingConfig,
    fit_gbm,
    fit_model,
    fit_ridge,
    fit_standardizer,
    predict_model,
)


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_train_days": 0},
            {"refit_days": 0},
            {"window_days": 3, "min_train_days": 5},
            {"ridge_lambda": -0.1},
            {"gbm_rounds": 0},
            {"gbm_learning_rate": 0.0},
            {"gbm_thresholds": 0},
            {"gbm_subsample": 0.0},
            {"gbm_subsample": 1.5},
            {"gbm_min_leaf": 0},
            {"seed": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)

    def test_round_trip(self):
        config = TrainingConfig(seed=7, gbm_rounds=12)
        assert TrainingConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            TrainingConfig.from_dict({"seed": 1, "bogus": 2})


class TestStandardizer:
    def test_zero_variance_column_gets_unit_scale(self):
        X = np.column_stack([np.arange(10.0), np.full(10, 3.0)])
        mean, scale = fit_standardizer(X)
        assert scale[1] == 1.0
        Xs = (X - mean) / scale
        assert np.isfinite(Xs).all()
        np.testing.assert_allclose(Xs[:, 1], 0.0)


class TestRidge:
    def test_recovers_linear_function(self, rng):
        X = rng.normal(size=(400, 5))
        true_w = np.array([2.0, -1.0, 0.5, 0.0, 3.0])
        y = X @ true_w + 7.0
        params = fit_ridge(X, y, lam=1e-8)
        pred = predict_model(params, X)
        np.testing.assert_allclose(pred, y, atol=1e-6)

    def test_handles_constant_column(self, rng):
        X = rng.normal(size=(100, 3))
        X[:, 1] = 4.2
        y = X[:, 0] * 2.0 + 1.0
        params = fit_ridge(X, y, lam=1e-6)
        assert np.isfinite(params["weights"]).all()
        pred = predict_model(params, X)
        np.testing.assert_allclose(pred, y, atol=1e-4)

    def test_deterministic(self, rng):
        X = rng.normal(size=(60, 4))
        y = rng.normal(size=60)
        a = fit_ridge(X, y, lam=1e-3)
        b = fit_ridge(X, y, lam=1e-3)
        np.testing.assert_array_equal(a["weights"], b["weights"])


class TestGbm:
    def test_reduces_training_error(self, rng):
        X = rng.uniform(-2, 2, size=(300, 4))
        y = np.where(X[:, 0] > 0, 5.0, -5.0) + 0.1 * X[:, 1]
        config = TrainingConfig(gbm_rounds=40, gbm_subsample=1.0)
        params = fit_gbm(X, y, config)
        pred = predict_model(params, X)
        base_mse = np.mean((y - y.mean()) ** 2)
        assert np.mean((y - pred) ** 2) < 0.2 * base_mse

    def test_same_seed_bitwise_identical(self, rng):
        X = rng.uniform(0, 1, size=(200, 6))
        y = rng.normal(size=200)
        config = TrainingConfig(gbm_rounds=20)
        a = fit_gbm(X, y, config, rng=np.random.default_rng([3, 0]))
        b = fit_gbm(X, y, config, rng=np.random.default_rng([3, 0]))
        for key in ("feat", "thr", "left", "right"):
            np.testing.assert_array_equal(a[key], b[key])

    def test_stump_arrays_rectangular_on_degenerate_data(self):
        # Constant features admit no split; arrays must still have
        # gbm_rounds entries (neutral stumps) for stacked fleet storage.
        X = np.full((50, 3), 2.0)
        y = np.arange(50.0)
        config = TrainingConfig(gbm_rounds=10, gbm_subsample=1.0)
        params = fit_gbm(X, y, config)
        assert params["feat"].shape == (10,)
        np.testing.assert_allclose(predict_model(params, X), y.mean())


class TestDispatch:
    def test_known_kinds(self, rng):
        X = rng.uniform(size=(64, 3))
        y = rng.normal(size=64)
        for kind in MODEL_KINDS:
            params = fit_model(
                kind, X, y, TrainingConfig(), rng=np.random.default_rng(0)
            )
            assert params["kind"] == kind
            assert predict_model(params, X).shape == (64,)

    def test_unknown_kind_rejected(self):
        X = np.zeros((10, 2))
        with pytest.raises(ValueError, match="unknown model kind"):
            fit_model("forest", X, np.zeros(10), TrainingConfig())
        with pytest.raises(ValueError, match="unknown model kind"):
            predict_model({"kind": "forest"}, X)
